package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vidi/internal/telemetry"
)

// Signal is anything a module can declare in its Sensitivity: a *Wire or a
// *Data. The interface is sealed (sigmeta is unexported) because the
// scheduler owns the per-signal metadata.
type Signal interface {
	Name() string
	sigmeta() *sigcore
}

// Sensitivity is a module's declared combinational footprint: the signals
// its Eval reads and the signals its Eval drives. The scheduler uses Reads
// to decide when a module must be re-evaluated and Reads+Drives to place
// modules into independent partitions.
//
// A module whose Eval also depends on registered state (almost all Moore
// machines: senders, FIFOs, AXI engines) should additionally implement
// Stable so quiet cycles can skip its Eval entirely; see EvalTracker.
//
// Declaring too little is a correctness bug (stale outputs, and a data race
// the -race golden tests will catch when partitions run in parallel);
// declaring too much only costs performance. Modules that do not implement
// Sensitive at all get the safe ReadsAll fallback: they are re-evaluated on
// every settle wave and force the whole design into a single sequential
// partition, which is exactly the legacy kernel's behaviour.
//
// Audit invariant (enforced by `vidi-lint`'s sensaudit analyzer statically
// and by SetSensitivityCheck at runtime): every Wire/Data read reachable
// from Eval must appear in Reads (or Drives — re-reading a signal only the
// module itself drives cannot miss a wakeup), and every Wire/Data write
// reachable from Eval must appear in Drives. A module whose footprint the
// static analyzer cannot resolve must either declare ReadsAll or carry a
// `//lint:sensaudit <reason>` waiver; ReadsAll modules are reported in
// Stats.ReadsAllModules so conservative fallbacks stay visible.
type Sensitivity struct {
	// ReadsAll marks a module that must be re-evaluated whenever anything
	// in the design changes. It is the conservative fallback.
	ReadsAll bool
	// Reads lists the signals the module's Eval reads.
	Reads []Signal
	// Drives lists the signals the module's Eval writes.
	Drives []Signal
}

// ReadsEverything is the explicit conservative sensitivity: re-evaluate the
// module on every wave and keep the whole design in one partition.
func ReadsEverything() Sensitivity { return Sensitivity{ReadsAll: true} }

// Sensitive is a Module that declares its combinational footprint. Modules
// that do not implement it are scheduled with the ReadsAll fallback.
type Sensitive interface {
	Module
	Sensitivity() Sensitivity
}

// Stable is an optional extension: a module that can cheaply report whether
// its Eval outputs could have changed since it last settled. When EvalStable
// returns true and none of the module's declared Reads changed, the
// scheduler skips the module's Eval for the cycle. Implementations must be
// conservative: return false whenever registered state feeding Eval may
// have changed.
//
// The scheduler learns about stability transitions through EvalTracker.Touch
// (or through declared-signal changes); it does not poll EvalStable every
// cycle. A module whose stability depends on state outside the Touch
// protocol — e.g. a shared link whose readiness flips when other modules
// spend from it — must additionally implement StablePoll so the scheduler
// keeps consulting EvalStable at the start of every cycle.
type Stable interface {
	EvalStable() bool
}

// StablePoll marks a Stable module whose EvalStable answer can change
// without a Touch or a declared-signal change. NeedsStablePoll is consulted
// once at Build time; when it reports true the scheduler polls the module's
// EvalStable at wave 0 of every cycle (the pre-refactor behaviour for all
// modules). Returning false lets a configuration without the external
// dependency (e.g. no shared link attached) skip the per-cycle poll.
//
// StablePoll gates only *when* Eval re-runs, never *what* it may touch: a
// polled module's Eval is still bound by the audit invariant on Sensitivity
// above — its signal reads and writes must match its declared Reads/Drives,
// and both the sensaudit analyzer and the dynamic checker hold it to that.
type StablePoll interface {
	Stable
	NeedsStablePoll() bool
}

// evalSettled lets the scheduler clear an EvalTracker after running Eval.
// Only types embedding EvalTracker satisfy it.
type evalSettled interface{ settleEval() }

// TickSensitive is an optional Module extension for clock-edge gating: the
// scheduler skips the module's Tick on cycles where nothing it watches
// happened. The legacy kernel calls every Tick every cycle; this contract is
// what lets the sensitivity scheduler beat it on quiet cycles.
//
// A gated module is woken (its next Tick runs) when a transaction starts or
// completes on any channel in TickWatch, or when a collaborator calls the
// wake hook installed via TickWakeable. After each Tick the scheduler asks
// TickStable; returning false keeps the module awake for the next cycle, so
// internal countdowns (gap timers, queued work) never need an external wake.
//
// Implementations must be conservative: TickStable must return false
// whenever the next Tick could observe or mutate anything — and every
// out-of-band mutation path (a queue Push, a callback, a shared counter)
// must either wake the module or be visible to TickStable at the time the
// module last ticked. Declaring too much wakefulness only costs performance;
// declaring too little changes simulated behaviour.
type TickSensitive interface {
	Module
	// TickWatch lists the channels whose handshake events (a transaction
	// starting or completing at the clock edge) require this module's Tick.
	TickWatch() []*Channel
	// TickStable reports that the module's Tick is a no-op until an external
	// event wakes it.
	TickStable() bool
}

// TickWakeable is an optional extension for TickSensitive modules that are
// mutated out-of-band (not through a watched channel): the scheduler installs
// a wake hook at Build time, and the module (or its collaborators) calls it
// whenever state requiring a Tick changes. The hook may only be called from
// the module's own partition — same rule as any shared-Go-state coupling, so
// a correct design's Tie declarations already guarantee it.
type TickWakeable interface {
	BindTickWake(wake func())
}

// NoHorizon is the TickHorizon answer of a module that never needs a tick
// until something external wakes it.
const NoHorizon = ^uint64(0)

// TickHorizon is an optional extension for quiescence cycle-batching: a
// module that can promise "my Ticks are mechanical until cycle H" lets the
// scheduler skip whole stretches of cycles at once instead of stepping
// through them one tick-gated cycle at a time.
//
// TickHorizon(now) returns a cycle H ≥ now such that every Tick the module
// would run in cycles [now, H) has no externally visible effect: it writes
// no signal, pushes no channel, wakes no other module, and its entire state
// evolution over those cycles can be reproduced by a single SkipTicks(n)
// call. Returning now declines the skip; returning NoHorizon places no
// bound. When the scheduler skips k cycles it calls SkipTicks(k) on every
// module whose horizon it consulted, so internal countdowns (a compute
// budget, a refill timer) stay exact.
//
// The scheduler only batches cycles on which the whole network is provably
// frozen — no pending evals, no unstable polled module, every channel idle
// or stalled, and every module that would tick covered by a horizon — so a
// design with even one awake module lacking a horizon simply never batches.
// Modules asleep under tick gating are not consulted and must not have
// their time advanced: a gated module's Tick contract already tolerates
// arbitrary sleep stretches.
type TickHorizon interface {
	Module
	TickHorizon(now uint64) uint64
	SkipTicks(n uint64)
}

// EvalTracker is an embeddable helper implementing Stable: call Touch from
// Tick (or any out-of-band mutator such as a queue Push) whenever registered
// state that feeds Eval changes. The scheduler clears the flag each time it
// runs the module's Eval.
//
// Touch may only be called from the module's own partition (its own Tick, a
// tied collaborator, or outside a Step) — the same rule as any shared-Go-state
// coupling, so a correct design's Tie declarations already guarantee it.
type EvalTracker struct {
	evalDirty bool
	// hook, installed by Build, marks the module pending in the scheduler so
	// wave-0 seeding does not have to poll every module's EvalStable.
	hook func()
}

// Touch marks the module's Eval-visible state as changed.
func (t *EvalTracker) Touch() {
	t.evalDirty = true
	if t.hook != nil {
		t.hook()
	}
}

// EvalStable implements Stable.
func (t *EvalTracker) EvalStable() bool { return !t.evalDirty }

func (t *EvalTracker) settleEval() { t.evalDirty = false }

func (t *EvalTracker) bindEvalHook(h func()) { t.hook = h }

// evalHooked lets Build install the pending-marking hook on EvalTracker
// embedders.
type evalHooked interface{ bindEvalHook(func()) }

// NullEval is embeddable by modules whose Eval is a no-op (pure sequential
// logic): it declares an empty sensitivity and permanent stability, so the
// scheduler never re-evaluates them. Modules embedding it still need a Tie
// if they share Go state with other modules' Eval or Tick.
type NullEval struct{}

// Eval implements Module as a no-op.
func (NullEval) Eval() {}

// Sensitivity implements Sensitive: no combinational reads or drives.
func (NullEval) Sensitivity() Sensitivity { return Sensitivity{} }

// EvalStable implements Stable: a no-op Eval never needs re-running.
func (NullEval) EvalStable() bool { return true }

// ErrDuplicateName is the sentinel wrapped by DuplicateNameError.
var ErrDuplicateName = errors.New("sim: duplicate name")

// DuplicateNameError is returned by Build when two modules, wires, data
// buses or channels are registered under the same name. Names are the only
// handle error messages, traces, and VCD dumps have on a design, so
// collisions were previously a silent source of confusing diagnostics.
type DuplicateNameError struct {
	Kind string // "module", "wire", "data" or "channel"
	Name string
}

// Error implements error.
func (e *DuplicateNameError) Error() string {
	return fmt.Sprintf("sim: duplicate %s name %q", e.Kind, e.Name)
}

// Unwrap keeps errors.Is(err, ErrDuplicateName) working.
func (e *DuplicateNameError) Unwrap() error { return ErrDuplicateName }

// Stats reports scheduler counters accumulated since the simulator was
// created. SkippedEvals estimates the Eval calls the legacy fixpoint kernel
// would have made that the sensitivity scheduler avoided.
type Stats struct {
	// Cycles is the number of completed clock cycles.
	Cycles uint64
	// EvalCalls is the number of Module.Eval invocations.
	EvalCalls uint64
	// SettleWaves is the total number of settle iterations (delta cycles)
	// across all cycles and partitions.
	SettleWaves uint64
	// SkippedEvals counts module evaluations avoided by the dirty-set
	// relative to the legacy re-evaluate-everything fixpoint.
	SkippedEvals uint64
	// SkippedTicks counts Tick calls avoided by clock-edge gating
	// (TickSensitive modules asleep on quiet cycles).
	SkippedTicks uint64
	// BatchedCycles counts clock cycles skipped wholesale by quiescence
	// batching: the network was frozen and every would-be tick was covered
	// by a TickHorizon, so the scheduler advanced time without settling,
	// checking or ticking anything.
	BatchedCycles uint64
	// Partitions is the number of independent components the sensitivity
	// graph was split into at Build time (1 on the legacy kernel).
	Partitions int
	// SettleLayers is the depth of the partition dependency DAG: partitions
	// within a layer settle in parallel, layers settle in order so declared
	// cross-partition reads always observe settled values (1 on the legacy
	// kernel and under coarse partitioning).
	SettleLayers int
	// Workers is the number of goroutines used per settle/tick phase
	// (1 means fully sequential).
	Workers int
	// WorkerBusy counts, per worker slot, the partition settles/ticks that
	// slot processed. Work is distributed by an atomic counter, so the split
	// across slots is observational (it varies run to run); the total equals
	// the partition-phase executions and is what matters for utilisation.
	WorkerBusy []uint64
	// ReadsAllModules names the modules scheduled with the conservative
	// ReadsAll fallback, in registration order. Each one is re-evaluated on
	// every settle wave and forces its whole component into one partition,
	// so a non-empty list is the first place to look when the scheduler is
	// not skipping work; vidi-lint's sensaudit cannot audit them either.
	ReadsAllModules []string
}

// String formats the counters for vidi-bench -v.
func (st Stats) String() string {
	s := fmt.Sprintf(
		"cycles=%d evals=%d waves=%d skipped=%d ticks-skipped=%d partitions=%d workers=%d",
		st.Cycles, st.EvalCalls, st.SettleWaves, st.SkippedEvals, st.SkippedTicks, st.Partitions, st.Workers)
	if st.SettleLayers > 1 {
		s += fmt.Sprintf(" layers=%d", st.SettleLayers)
	}
	if st.BatchedCycles > 0 {
		s += fmt.Sprintf(" batched=%d", st.BatchedCycles)
	}
	if len(st.ReadsAllModules) > 0 {
		s += fmt.Sprintf(" readsall=%d%v", len(st.ReadsAllModules), st.ReadsAllModules)
	}
	return s
}

// modState is the scheduler's per-module bookkeeping.
type modState struct {
	m       Module
	stable  Stable        // nil: always evaluate on wave 0
	clear   evalSettled   // non-nil: reset the module's EvalTracker after Eval
	ticks   TickSensitive // non-nil: Tick may be gated on quiet cycles
	part    int32         // owning partition index
	pending bool
	// needsTick wakes a gated module for the next clock edge. Written by the
	// latch phase (main goroutine), by wake hooks and by earlier Ticks of the
	// same partition; all of those are ordered before the module's own tick
	// slot, so no synchronisation is needed. Meaningful only when ticks is
	// non-nil; paired with the partition's awake counter.
	needsTick bool
}

// partition is one node of the partition DAG: a group of modules that owns
// every signal its members drive. Within a partition, module order is
// registration order, same as the legacy kernel. Partitions that exchange no
// signals are fully independent; a declared read of another partition's
// signal places the reader in a strictly later settle layer, and the change
// notification crosses over through the owner's outbox at a layer barrier —
// so no two workers ever write the same partition's state, and determinism
// is preserved at any worker count.
type partition struct {
	modules    []int32 // module indices, ascending (registration order)
	allReaders []int32 // modules with the ReadsAll fallback, ascending
	seedAlways []int32 // modules without Stable: evaluate on wave 0 every cycle
	seedPoll   []int32 // StablePoll modules: EvalStable consulted every cycle

	// outbox is the partition's mailbox of changed signals with readers in
	// other partitions (signal ids, dedup'd by sigcore.queued). Appended only
	// by this partition's own worker (its settle or tick) or by the caller's
	// goroutine outside a Step; drained single-threaded at layer barriers.
	outbox []int32

	// ungated counts modules without tick gating; awake counts gated modules
	// whose needsTick flag is set. When both are zero the whole tick phase is
	// skipped for the partition.
	ungated int
	awake   int

	pendingCount  int
	changedInWave bool
	err           error

	// counters (read via Stats after phases complete)
	evals     uint64
	waves     uint64
	skipped   uint64
	tickSkips uint64

	// telemetry bookkeeping, written only by the partition's own worker and
	// folded into the sink on scrape (never read during a Step). wakes
	// counts event-driven pending marks (signal changes and Touch hooks);
	// busyCycles counts cycles with at least one Eval; evalNS is the sampled
	// settle time (every timingSampleEvery-th cycle, scaled back up).
	wakes      uint64
	busyCycles uint64
	evalNS     uint64

	// track is the partition's Perfetto lane (nil without tracing); the
	// span fields coalesce consecutive busy cycles into one span.
	track     *telemetry.Track
	spanOpen  bool
	spanStart uint64
	spanEnd   uint64

	_ [24]byte // pad to reduce false sharing between parallel partitions
}

// scheduler is the sensitivity-graph engine built by Simulator.Build.
type scheduler struct {
	sim     *Simulator
	mods    []modState
	parts   []partition
	sigs    []*sigcore // dense signal table (wires then datas), for outbox drains
	workers int        // effective worker count for parallel phases

	// layers lists partition indices per settle layer of the dependency DAG;
	// allIdx lists every partition (tick phase, which has no ordering).
	layers [][]int32
	allIdx []int32

	// horizons caches each module's TickHorizon implementation (nil if none);
	// batchable is the static precondition for quiescence batching: every
	// ungated module has a horizon (gated modules are covered dynamically —
	// an awake one without a horizon just declines the batch at runtime).
	horizons      []TickHorizon
	batchable     bool
	batchedCycles uint64

	// workerBusy counts partition-phase executions per worker slot; each slot
	// writes only its own entry, read after the phase barrier.
	workerBusy []uint64

	// timed arms the sampled per-partition settle timing (telemetry sink
	// attached).
	timed bool

	// readsAllNames lists the modules scheduled with the ReadsAll fallback,
	// in registration order, so Stats can surface conservative fallbacks.
	readsAllNames []string
}

// touched marks the readers of a changed signal pending. It runs on the
// goroutine that is settling (or ticking) the signal's owner partition, or
// on the caller's goroutine outside a Step. Readers in the owner partition
// are marked directly; readers elsewhere are reached by enqueueing the
// signal in the owner's outbox, drained single-threaded at layer barriers —
// so pending bits are never written across workers.
func (sc *scheduler) touched(g *sigcore) {
	if g.part < 0 {
		return
	}
	p := &sc.parts[g.part]
	p.changedInWave = true
	for _, mi := range g.readers {
		ms := &sc.mods[mi]
		if !ms.pending {
			ms.pending = true
			p.pendingCount++
			p.wakes++
		}
	}
	if len(g.remote) > 0 && !g.queued {
		g.queued = true
		p.outbox = append(p.outbox, g.id)
	}
}

// drainOutboxes flushes every partition's mailbox, marking remote readers
// pending. It runs only on the settle barrier goroutine while no partition
// workers are active, in partition-index then enqueue order, so the wakeups
// it produces are deterministic.
func (sc *scheduler) drainOutboxes() {
	for i := range sc.parts {
		p := &sc.parts[i]
		if len(p.outbox) == 0 {
			continue
		}
		for _, sid := range p.outbox {
			g := sc.sigs[sid]
			g.queued = false
			for _, mi := range g.remote {
				ms := &sc.mods[mi]
				if !ms.pending {
					ms.pending = true
					q := &sc.parts[ms.part]
					q.pendingCount++
					q.wakes++
				}
			}
		}
		p.outbox = p.outbox[:0]
	}
}

// Settle timing is sampled, not continuous: time.Now costs enough that
// wrapping every partition's settle every cycle would show up against the
// ≤2% telemetry overhead budget, so one cycle in timingSampleEvery is
// measured and scaled back up. The sample phase is cycle-aligned, hence
// deterministic; the measured value feeds a counter only and can never
// perturb simulation behaviour.
const (
	timingSampleEvery = 16
	timingSampleMask  = timingSampleEvery - 1
)

// settlePart runs one cycle's combinational settle for one partition,
// measuring the sampled settle time when a telemetry sink is attached.
//
//lint:detaudit sampled wall-clock settle timing feeds only the vidi_sched_eval_ns_total telemetry counter, which the determinism tripwire excludes from comparison; no simulation or trace state derives from it
func (sc *scheduler) settlePart(p *partition, cycle uint64, maxIters int) error {
	if !sc.timed || cycle&timingSampleMask != 0 {
		return sc.settlePartRun(p, cycle, maxIters)
	}
	t0 := time.Now()
	err := sc.settlePartRun(p, cycle, maxIters)
	p.evalNS += uint64(time.Since(t0)) * timingSampleEvery
	return err
}

// settlePartRun is the settle worklist: a pending-set processed in
// ascending module (registration) order, bounded by maxIters waves so
// combinational loops are still detected.
func (sc *scheduler) settlePartRun(p *partition, cycle uint64, maxIters int) error {
	// Wave 0 seeds: everything already pending (an input changed or the
	// module was Touched last cycle), plus the modules that declare no
	// stability at all and the few whose stability must be polled. Everything
	// else is event-driven: Touch and signal changes mark pending directly.
	for _, mi := range p.seedAlways {
		ms := &sc.mods[mi]
		if !ms.pending {
			ms.pending = true
			p.pendingCount++
		}
	}
	for _, mi := range p.seedPoll {
		ms := &sc.mods[mi]
		if !ms.pending && !ms.stable.EvalStable() {
			ms.pending = true
			p.pendingCount++
		}
	}
	didWork := false
	for wave := 0; p.pendingCount > 0; wave++ {
		if wave >= maxIters {
			return fmt.Errorf("%w at cycle %d", ErrCombLoop, cycle)
		}
		p.changedInWave = false
		evals := uint64(0)
		for _, mi := range p.modules {
			ms := &sc.mods[mi]
			if !ms.pending {
				continue
			}
			ms.pending = false
			p.pendingCount--
			if pr := sc.sim.probe; pr != nil {
				pr.begin()
				ms.m.Eval()
				pr.end()
				if err := pr.check(int(mi), ms.m.Name(), cycle); err != nil {
					return err
				}
			} else {
				ms.m.Eval()
			}
			if ms.clear != nil {
				ms.clear.settleEval()
			}
			evals++
		}
		p.evals += evals
		p.waves++
		p.skipped += uint64(len(p.modules)) - evals
		if evals > 0 {
			didWork = true
		}
		// A ReadsAll module re-evaluates on every wave in which anything
		// in its partition changed, matching the legacy fixpoint.
		if p.changedInWave {
			for _, mi := range p.allReaders {
				ms := &sc.mods[mi]
				if !ms.pending {
					ms.pending = true
					p.pendingCount++
				}
			}
		}
	}
	// The legacy kernel always runs one extra full pass per cycle: the final
	// no-change confirmation (a quiet cycle is exactly one such pass).
	p.skipped += uint64(len(p.modules))
	if didWork {
		p.busyCycles++
		if p.track != nil {
			p.noteBusy(cycle)
		}
	}
	return nil
}

// noteBusy extends (or opens) the partition's coalesced busy span; runs of
// consecutive active cycles become a single Perfetto slice, bounding event
// volume on long runs.
func (p *partition) noteBusy(cycle uint64) {
	if p.spanOpen && p.spanEnd == cycle {
		p.spanEnd = cycle + 1
		return
	}
	if p.spanOpen {
		p.track.Span("busy", p.spanStart, p.spanEnd)
	}
	p.spanOpen, p.spanStart, p.spanEnd = true, cycle, cycle+1
}

// tickPart commits sequential state for one partition at the clock edge.
// Gated modules sleep through quiet cycles; a wake flag set by an earlier
// module's Tick in the same partition is honoured in the same cycle (the
// flag is read at the module's own slot), while a wake from a later module
// persists to the next cycle — in both cases exactly when the legacy
// kernel's effect would land, because module order is registration order.
func (sc *scheduler) tickPart(p *partition) {
	if p.ungated == 0 && p.awake == 0 {
		// Every module is gated and asleep: skip the scan entirely.
		p.tickSkips += uint64(len(p.modules))
		return
	}
	for _, mi := range p.modules {
		ms := &sc.mods[mi]
		if ms.ticks == nil {
			ms.m.Tick()
			continue
		}
		if !ms.needsTick {
			p.tickSkips++
			continue
		}
		ms.needsTick = false
		p.awake--
		ms.m.Tick()
		// Re-arm unless the module's own Tick already did (via a self-wake
		// hook, which keeps the awake counter consistent).
		if !ms.needsTick && !ms.ticks.TickStable() {
			ms.needsTick = true
			p.awake++
		}
	}
}

// runParts runs fn over the given partitions, in parallel when there is more
// than one of them and more than one worker. Work is distributed by an
// atomic counter; that makes the partition→goroutine assignment
// nondeterministic, but partitions within a batch are independent by
// construction (a settle layer, or the whole tick phase), so simulation
// results do not depend on it — only the observational workerBusy split does.
func (sc *scheduler) runParts(idxs []int32, fn func(p *partition)) {
	n := len(idxs)
	if n == 0 {
		return
	}
	if n == 1 || sc.workers <= 1 {
		for _, pi := range idxs {
			fn(&sc.parts[pi])
		}
		sc.workerBusy[0] += uint64(n)
		return
	}
	w := sc.workers
	if w > n {
		w = n
	}
	perturb := sc.sim.perturbSeed
	var next atomic.Int64
	worker := func(slot int) {
		// Seeded yield injection (SetSchedulePerturb): a cheap splitmix-style
		// hash of (seed, slot, job) decides where this worker yields,
		// deliberately perturbing the goroutine schedule without touching
		// simulation state.
		h := perturb ^ (uint64(slot)+1)*0x9e3779b97f4a7c15
		ran := uint64(0)
		for {
			j := int(next.Add(1)) - 1
			if j >= n {
				break
			}
			if perturb != 0 {
				h ^= uint64(j) + 0xbf58476d1ce4e5b9
				h *= 0x94d049bb133111eb
				h ^= h >> 31
				if h&3 == 0 {
					runtime.Gosched()
				}
			}
			fn(&sc.parts[idxs[j]])
			ran++
		}
		sc.workerBusy[slot] += ran
	}
	var wg sync.WaitGroup
	wg.Add(w - 1)
	for i := 1; i < w; i++ {
		go func(slot int) {
			defer wg.Done()
			worker(slot)
		}(i)
	}
	worker(0)
	wg.Wait()
}

// settle runs the combinational phase layer by layer: partitions within a
// layer settle in parallel, and every layer barrier flushes the outboxes so
// cross-partition reads (always from an earlier layer, by construction of
// the DAG) observe settled values. The first error in partition order wins,
// keeping failures deterministic even when partitions run concurrently.
func (sc *scheduler) settle(cycle uint64, maxIters int) error {
	// Wakeups produced since the last settle — tick-phase writes, latch
	// wakes, or the caller driving signals between Steps — land first.
	sc.drainOutboxes()
	for _, layer := range sc.layers {
		sc.runParts(layer, func(p *partition) {
			p.err = sc.settlePart(p, cycle, maxIters)
		})
		sc.drainOutboxes()
	}
	for i := range sc.parts {
		if err := sc.parts[i].err; err != nil {
			sc.parts[i].err = nil
			return err
		}
	}
	return nil
}

// tick runs the clock edge across all partitions. Tick order across
// partitions is unordered by contract: a module's Tick may only write
// signals its own partition owns (cross-partition coupling in the tick
// phase must be declared with Tie), so no layering is needed.
func (sc *scheduler) tick() {
	sc.runParts(sc.allIdx, func(p *partition) { sc.tickPart(p) })
}

// quiesce reports how many of the next limit cycles can be skipped outright:
// k > 0 means cycles [now, now+k) would each be a no-op — the combinational
// network is frozen (nothing pending anywhere, every polled module stable),
// every channel is idle or stalled on an unready consumer so the latch phase
// cannot produce events, and every module that would tick has promised (via
// TickHorizon) that its next k ticks are mechanical. On success the skipped
// time has already been committed: horizons were advanced with SkipTicks and
// the per-partition counters account the skipped work exactly as tick/eval
// gating would have.
//
// Frozen state also pins everything downstream of a Step: checker verdicts,
// done() predicates and watchdog progress are functions of module and
// channel state, none of which changes during the skipped stretch — which is
// why Run can jump the clock without running them.
func (sc *scheduler) quiesce(now, limit uint64) uint64 {
	if limit == 0 {
		return 0
	}
	for i := range sc.parts {
		p := &sc.parts[i]
		if p.pendingCount > 0 || len(p.outbox) > 0 {
			return 0
		}
		for _, mi := range p.seedPoll {
			if !sc.mods[mi].stable.EvalStable() {
				return 0
			}
		}
	}
	for _, ch := range sc.sim.channels {
		// Frozen channel: no offer, or an offer stalled behind a transaction
		// already in flight with the consumer not ready. Anything else would
		// latch a start or a fire next cycle.
		if ch.Valid.peek() && !(ch.inFlight && !ch.Ready.peek()) {
			return 0
		}
	}
	k := limit
	for i := range sc.mods {
		ms := &sc.mods[i]
		if ms.ticks != nil && !ms.needsTick {
			continue // asleep under tick gating: its Tick would not run anyway
		}
		th := sc.horizons[i]
		if th == nil {
			return 0 // an awake module without a horizon must tick for real
		}
		h := th.TickHorizon(now)
		if h <= now {
			return 0
		}
		if h != NoHorizon && h-now < k {
			k = h - now
		}
	}
	// Commit: fast-forward the consulted modules' internal time, and fold
	// the skipped work into the counters exactly as per-cycle gating would
	// have (one legacy confirmation pass of evals and a full tick scan per
	// skipped cycle).
	for i := range sc.mods {
		ms := &sc.mods[i]
		if ms.ticks != nil && !ms.needsTick {
			continue
		}
		sc.horizons[i].SkipTicks(k)
	}
	for i := range sc.parts {
		p := &sc.parts[i]
		n := uint64(len(p.modules))
		p.skipped += k * n
		p.tickSkips += k * n
	}
	sc.batchedCycles += k
	return k
}

// counters sums the per-partition counters into st.
func (sc *scheduler) counters(st *Stats) {
	for i := range sc.parts {
		p := &sc.parts[i]
		st.EvalCalls += p.evals
		st.SettleWaves += p.waves
		st.SkippedEvals += p.skipped
		st.SkippedTicks += p.tickSkips
	}
	st.BatchedCycles += sc.batchedCycles
	if len(sc.workerBusy) > 0 || len(st.WorkerBusy) > 0 {
		n := len(st.WorkerBusy)
		if len(sc.workerBusy) > n {
			n = len(sc.workerBusy)
		}
		wb := make([]uint64, n)
		copy(wb, st.WorkerBusy)
		for i, v := range sc.workerBusy {
			wb[i] += v
		}
		st.WorkerBusy = wb
	}
}

// Tie forces the given modules into the same partition even though they
// share no declared signals. Use it when modules communicate through shared
// Go state the sensitivity graph cannot see — a shared memory model, a
// token bucket spent from several Ticks, callback hooks that mutate another
// module's registers. Tied modules settle and tick sequentially relative to
// each other (in registration order), exactly as on the legacy kernel.
func (s *Simulator) Tie(ms ...Module) {
	if len(ms) < 2 {
		return
	}
	s.ties = append(s.ties, ms)
	s.invalidate()
}

// SetWorkers bounds the worker pool used for parallel partition evaluation.
// n <= 0 restores the default (GOMAXPROCS, capped by the partition count);
// n == 1 forces fully sequential execution.
func (s *Simulator) SetWorkers(n int) {
	s.workers = n
	s.invalidate()
}

// SetSchedulePerturb arms deterministic schedule perturbation: with a
// non-zero seed, the parallel worker loop injects runtime.Gosched calls at
// points derived from (seed, worker slot, job index), deliberately
// reshuffling which goroutine picks up which partition and when it yields.
// Partitions within a batch are independent by construction, so simulation
// results MUST NOT change — that is exactly what the dual-run determinism
// tripwire (internal/eval) asserts by byte-comparing traces across
// perturbed runs. Zero (the default) disables injection and adds no work
// to the hot loop beyond one predictable branch.
func (s *Simulator) SetSchedulePerturb(seed uint64) {
	s.perturbSeed = seed
}

// SetCoarsePartitions selects the coarse partitioning strategy: union-find
// merges read edges as well as drives, so a module lands in the same
// partition as every signal it reads and the partition graph has no cross
// edges (a single settle layer, no mailbox traffic). This was the only
// strategy before fine-grained sub-partitioning; it is kept selectable as a
// differential reference — the golden matrix tests assert byte-identical
// traces across both strategies — and as an escape hatch.
func (s *Simulator) SetCoarsePartitions(coarse bool) {
	s.coarse = coarse
	s.invalidate()
}

// PartitionLayout returns each partition's module names (registration order
// within a partition, partitions ordered by lowest module index), building
// the schedule if needed. The legacy kernel reports one partition holding
// every module. It exists for tests and diagnostics: the tie-preservation
// property test asserts over it that partitioning never splits a Tie group.
func (s *Simulator) PartitionLayout() ([][]string, error) {
	if !s.built {
		if err := s.Build(); err != nil {
			return nil, err
		}
	}
	if s.sched == nil {
		all := make([]string, len(s.modules))
		for i, m := range s.modules {
			all[i] = m.Name()
		}
		return [][]string{all}, nil
	}
	out := make([][]string, len(s.sched.parts))
	for i := range s.sched.parts {
		p := &s.sched.parts[i]
		out[i] = make([]string, 0, len(p.modules))
		for _, mi := range p.modules {
			out[i] = append(out[i], s.sched.mods[mi].m.Name())
		}
	}
	return out, nil
}

// TieGroups returns the declared Tie groups as module names, in declaration
// order. Companion accessor to PartitionLayout for property tests.
func (s *Simulator) TieGroups() [][]string {
	out := make([][]string, len(s.ties))
	for i, tie := range s.ties {
		out[i] = make([]string, 0, len(tie))
		for _, m := range tie {
			out[i] = append(out[i], m.Name())
		}
	}
	return out
}

// SetLegacy selects the seed kernel: a global delta-cycle fixpoint that
// re-evaluates every module until nothing changes. It is kept as the
// reference implementation for the golden determinism tests and the
// perf table; new code should leave the sensitivity scheduler enabled.
func (s *Simulator) SetLegacy(legacy bool) {
	s.legacy = legacy
	s.invalidate()
}

// Legacy reports whether the legacy fixpoint kernel is selected.
func (s *Simulator) Legacy() bool { return s.legacy }

// invalidate discards the built schedule (folding its counters into the
// simulator's running totals) so the next Step rebuilds it. Called whenever
// the design changes: new modules, wires, channels, ties, or kernel knobs.
func (s *Simulator) invalidate() {
	if s.sched != nil {
		s.sched.counters(&s.stats)
		s.sched = nil
	}
	s.probe = nil
	s.built = false
}

// checkNames enforces unique names per kind across the design.
func (s *Simulator) checkNames() error {
	check := func(kind string, names func(yield func(string) bool)) error {
		seen := make(map[string]struct{})
		var dup *DuplicateNameError
		names(func(n string) bool {
			if _, ok := seen[n]; ok {
				dup = &DuplicateNameError{Kind: kind, Name: n}
				return false
			}
			seen[n] = struct{}{}
			return true
		})
		if dup != nil {
			return dup
		}
		return nil
	}
	if err := check("module", func(yield func(string) bool) {
		for _, m := range s.modules {
			if !yield(m.Name()) {
				return
			}
		}
	}); err != nil {
		return err
	}
	// Channels before wires/datas: a channel owns derived ".valid"/".ready"/
	// ".data" signals, so two channels with one name also collide on those.
	// Checking the channel namespace first reports the entity the user
	// actually declared instead of an internal derived wire.
	if err := check("channel", func(yield func(string) bool) {
		for _, ch := range s.channels {
			if !yield(ch.name) {
				return
			}
		}
	}); err != nil {
		return err
	}
	if err := check("wire", func(yield func(string) bool) {
		for _, w := range s.wires {
			if !yield(w.name) {
				return
			}
		}
	}); err != nil {
		return err
	}
	return check("data", func(yield func(string) bool) {
		for _, d := range s.datas {
			if !yield(d.name) {
				return
			}
		}
	})
}

// Build validates the design (unique names, resolvable ties) and compiles
// the sensitivity graph: per-signal reader lists, connected components via
// union-find over modules and signals, and the partition schedule. Step
// calls it lazily; call it directly to surface configuration errors early.
func (s *Simulator) Build() error {
	s.invalidate()
	if err := s.checkNames(); err != nil {
		return err
	}
	if s.legacy {
		// The legacy kernel ticks everything every cycle and re-evaluates
		// everything each wave; detach any wake or pending hooks left over
		// from a previous scheduler build.
		for _, m := range s.modules {
			if w, ok := m.(TickWakeable); ok {
				w.BindTickWake(nil)
			}
			if eh, ok := m.(evalHooked); ok {
				eh.bindEvalHook(nil)
			}
		}
		s.built = true
		return nil
	}

	nm := len(s.modules)
	sigs := make([]*sigcore, 0, len(s.wires)+len(s.datas))
	for _, w := range s.wires {
		sigs = append(sigs, &w.sigcore)
	}
	for _, d := range s.datas {
		sigs = append(sigs, &d.sigcore)
	}
	for i, g := range sigs {
		g.id = int32(i)
		g.part = -1
		g.readers = g.readers[:0]
	}

	// Union-find nodes: [0,nm) modules, [nm,nm+len(sigs)) signals, plus a
	// virtual "everything" node that ReadsAll modules attach to.
	all := nm + len(sigs)
	parent := make([]int32, all+1)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	// Partition granularity: by default only drive edges merge a module with
	// a signal, so a signal lives with its driver(s) and a reader in another
	// component stays there — read edges become directed dependencies between
	// partitions instead of merging them. Coarse mode (SetCoarsePartitions)
	// restores the original strategy of unioning reads too.
	sens := make([]Sensitivity, nm)
	haveAll := false
	var readsAllNames []string
	for i, m := range s.modules {
		if sn, ok := m.(Sensitive); ok {
			sens[i] = sn.Sensitivity()
		} else {
			sens[i] = ReadsEverything()
		}
		if sens[i].ReadsAll {
			readsAllNames = append(readsAllNames, m.Name())
			haveAll = true
			union(int32(i), int32(all))
			continue
		}
		for _, sg := range sens[i].Reads {
			g := sg.sigmeta()
			if g.sim != s {
				return fmt.Errorf("sim: module %s reads signal %s of a different simulator", m.Name(), sg.Name())
			}
			g.readers = append(g.readers, int32(i))
			if s.coarse {
				union(int32(i), int32(nm)+g.id)
			}
		}
		for _, sg := range sens[i].Drives {
			g := sg.sigmeta()
			if g.sim != s {
				return fmt.Errorf("sim: module %s drives signal %s of a different simulator", m.Name(), sg.Name())
			}
			union(int32(i), int32(nm)+g.id)
		}
	}
	if haveAll {
		for _, g := range sigs {
			union(int32(all), int32(nm)+g.id)
		}
		if !s.coarse {
			// A ReadsAll module re-evaluates whenever anything in its
			// partition changes (changedInWave), so every module — including
			// pure readers no longer merged in by their read edges — must
			// share its partition for that trigger to see all changes.
			for i := 0; i < nm; i++ {
				union(int32(all), int32(i))
			}
		}
	}
	midx := make(map[Module]int32, nm)
	for i, m := range s.modules {
		midx[m] = int32(i)
	}
	for _, tie := range s.ties {
		first, ok := midx[tie[0]]
		if !ok {
			return fmt.Errorf("sim: tie references unregistered module %s", tie[0].Name())
		}
		for _, m := range tie[1:] {
			mi, ok := midx[m]
			if !ok {
				return fmt.Errorf("sim: tie references unregistered module %s", m.Name())
			}
			union(first, mi)
		}
	}

	// Settle-order analysis over the preliminary components: a signal's value
	// flows from the component that drives it to every component that reads
	// it, so those read edges must be acyclic to settle in one ordered pass.
	// Tie merges can induce cycles invisible at module granularity (two
	// groups reading each other's signals); Tarjan's SCC over the component
	// graph finds them, and each SCC collapses into a single partition. The
	// surviving condensation is a DAG whose longest-path layering becomes the
	// settle schedule.
	prelimOf := make(map[int32]int32)
	var prelimRep []int32 // one representative module per component
	for i := range s.modules {
		root := find(int32(i))
		if _, ok := prelimOf[root]; !ok {
			prelimOf[root] = int32(len(prelimRep))
			prelimRep = append(prelimRep, int32(i))
		}
	}
	np := len(prelimRep)
	adj := make([][]int32, np)
	seenEdge := make(map[int64]struct{})
	for _, g := range sigs {
		src, driven := prelimOf[find(int32(nm)+g.id)]
		if !driven {
			continue // no driver: imposes no settle ordering
		}
		for _, mi := range g.readers {
			dst := prelimOf[find(mi)]
			if dst == src {
				continue
			}
			key := int64(src)<<32 | int64(dst)
			if _, dup := seenEdge[key]; dup {
				continue
			}
			seenEdge[key] = struct{}{}
			adj[src] = append(adj[src], dst)
		}
	}
	sccIdx := make([]int32, np)
	sccLow := make([]int32, np)
	onStack := make([]bool, np)
	for i := range sccIdx {
		sccIdx[i] = -1
	}
	var sccStack []int32
	var sccCounter int32
	var strong func(v int32)
	strong = func(v int32) {
		sccIdx[v], sccLow[v] = sccCounter, sccCounter
		sccCounter++
		sccStack = append(sccStack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if sccIdx[w] < 0 {
				strong(w)
				if sccLow[w] < sccLow[v] {
					sccLow[v] = sccLow[w]
				}
			} else if onStack[w] && sccIdx[w] < sccLow[v] {
				sccLow[v] = sccIdx[w]
			}
		}
		if sccLow[v] == sccIdx[v] {
			top := len(sccStack)
			for {
				top--
				w := sccStack[top]
				onStack[w] = false
				if w == v {
					break
				}
			}
			for _, w := range sccStack[top+1:] {
				union(prelimRep[v], prelimRep[w])
			}
			sccStack = sccStack[:top]
		}
	}
	for v := int32(0); v < int32(np); v++ {
		if sccIdx[v] < 0 {
			strong(v)
		}
	}

	// Partitions in order of their lowest-index module, modules ascending
	// inside each: evaluation order within a partition is registration
	// order, same as the legacy kernel.
	sc := &scheduler{sim: s, mods: make([]modState, nm), sigs: sigs}
	for _, ch := range s.channels {
		ch.watchers = ch.watchers[:0]
	}
	sc.horizons = make([]TickHorizon, nm)
	sc.batchable = true
	compIdx := make(map[int32]int32)
	for i, m := range s.modules {
		if th, ok := m.(TickHorizon); ok {
			sc.horizons[i] = th
		}
		root := find(int32(i))
		pi, ok := compIdx[root]
		if !ok {
			pi = int32(len(sc.parts))
			compIdx[root] = pi
			sc.parts = append(sc.parts, partition{})
		}
		ms := &sc.mods[i]
		ms.m = m
		ms.part = pi
		ms.pending = true // evaluate everything on the first cycle
		if st, ok := m.(Stable); ok {
			ms.stable = st
		}
		if cl, ok := m.(evalSettled); ok {
			ms.clear = cl
		}
		p := &sc.parts[pi]
		p.modules = append(p.modules, int32(i))
		p.pendingCount++
		if sens[i].ReadsAll {
			p.allReaders = append(p.allReaders, int32(i))
		}
		// Wave-0 seeding class: no Stable at all → seed every cycle; a
		// StablePoll module with an active external dependency → poll every
		// cycle; everything else is event-driven via Touch and signal changes.
		if ms.stable == nil {
			p.seedAlways = append(p.seedAlways, int32(i))
		} else if sp, ok := m.(StablePoll); ok && sp.NeedsStablePoll() {
			p.seedPoll = append(p.seedPoll, int32(i))
		}
		if eh, ok := m.(evalHooked); ok {
			st, pidx := ms, pi
			eh.bindEvalHook(func() {
				if !st.pending {
					st.pending = true
					sc.parts[pidx].pendingCount++
					sc.parts[pidx].wakes++
				}
			})
		}
		if ts, ok := m.(TickSensitive); ok {
			ms.ticks = ts
			ms.needsTick = true // tick everything on the first cycle
			p.awake++
			for _, ch := range ts.TickWatch() {
				if ch != nil {
					ch.watchers = append(ch.watchers, int32(i))
				}
			}
		} else {
			p.ungated++
			if sc.horizons[i] == nil {
				// An ungated module ticks every cycle with no horizon to
				// bound the skip, so this design can never batch.
				sc.batchable = false
			}
		}
		if w, ok := m.(TickWakeable); ok {
			if ms.ticks == nil {
				// Ungated modules tick every cycle; a wake is meaningless.
				w.BindTickWake(nil)
			} else {
				st, pidx := ms, pi
				w.BindTickWake(func() {
					if !st.needsTick {
						st.needsTick = true
						sc.parts[pidx].awake++
					}
				})
			}
		}
	}
	// Signal ownership: a signal lives with its driver component. A signal
	// nobody drives through a declared Eval (test stimulus written between
	// Steps, say) is adopted by its first reader's partition so changes still
	// wake readers; it contributes no settle-order edges.
	driven := make([]bool, len(sigs))
	for si, g := range sigs {
		if pi, ok := compIdx[find(int32(nm)+g.id)]; ok {
			g.part = pi
			driven[si] = true
		} else if len(g.readers) > 0 {
			g.part = sc.mods[g.readers[0]].part
		}
	}
	// Split each signal's readers into same-partition (marked pending
	// directly) and remote (reached through the owner's outbox).
	for _, g := range sigs {
		g.remote = g.remote[:0]
		g.queued = false
		if len(g.readers) == 0 {
			continue
		}
		local := g.readers[:0]
		for _, mi := range g.readers {
			if sc.mods[mi].part == g.part {
				local = append(local, mi)
			} else {
				g.remote = append(g.remote, mi)
			}
		}
		g.readers = local
	}
	// Layer the partition DAG by longest path: every remaining cross-
	// partition read edge goes from a lower layer to a strictly higher one
	// (cycles were collapsed by the SCC pass above), so settling layers in
	// order guarantees declared reads always observe settled values.
	npf := len(sc.parts)
	fadj := make([][]int32, npf)
	indeg := make([]int, npf)
	seenEdge = make(map[int64]struct{})
	for si, g := range sigs {
		if !driven[si] || len(g.remote) == 0 {
			continue
		}
		for _, mi := range g.remote {
			dst := sc.mods[mi].part
			key := int64(g.part)<<32 | int64(dst)
			if _, dup := seenEdge[key]; dup {
				continue
			}
			seenEdge[key] = struct{}{}
			fadj[g.part] = append(fadj[g.part], dst)
			indeg[dst]++
		}
	}
	layerOf := make([]int, npf)
	queue := make([]int32, 0, npf)
	for i := 0; i < npf; i++ {
		if indeg[i] == 0 {
			queue = append(queue, int32(i))
		}
	}
	maxLayer := 0
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		for _, w := range fadj[v] {
			if layerOf[v]+1 > layerOf[w] {
				layerOf[w] = layerOf[v] + 1
				if layerOf[w] > maxLayer {
					maxLayer = layerOf[w]
				}
			}
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, int32(w))
			}
		}
	}
	sc.layers = make([][]int32, maxLayer+1)
	for i := 0; i < npf; i++ {
		sc.layers[layerOf[i]] = append(sc.layers[layerOf[i]], int32(i))
	}
	sc.allIdx = make([]int32, npf)
	for i := range sc.allIdx {
		sc.allIdx[i] = int32(i)
	}

	// Move signal state into the per-partition struct-of-arrays slabs now
	// that ownership is final.
	s.buildSlabs(npf)

	sc.workers = s.workers
	if sc.workers <= 0 {
		sc.workers = runtime.GOMAXPROCS(0)
	}
	if sc.workers > len(sc.parts) {
		sc.workers = len(sc.parts)
	}
	if sc.workers < 1 {
		sc.workers = 1
	}
	sc.workerBusy = make([]uint64, sc.workers)
	sc.readsAllNames = readsAllNames
	if s.tel != nil {
		sc.bindTelemetry(s.tel)
	}
	if s.sensCheck {
		// The probe's access record is a single buffer, so checking runs the
		// partitions sequentially; results are unchanged (partitions are
		// independent), only parallelism is lost.
		s.probe = s.buildProbe(sens)
		sc.workers = 1
	}
	s.sched = sc
	s.built = true
	return nil
}

// Stats returns the scheduler counters accumulated so far.
func (s *Simulator) Stats() Stats {
	st := s.stats
	st.Cycles = s.cycle
	if s.sched != nil {
		s.sched.counters(&st)
		st.Partitions = len(s.sched.parts)
		st.SettleLayers = len(s.sched.layers)
		st.Workers = s.sched.workers
		st.ReadsAllModules = append([]string(nil), s.sched.readsAllNames...)
	} else {
		// Legacy kernel (or no schedule built yet): one sequential partition,
		// one worker — never report a stale scheduler shape.
		st.Partitions = 1
		st.SettleLayers = 1
		st.Workers = 1
		st.WorkerBusy = append([]uint64(nil), st.WorkerBusy...)
	}
	return st
}
