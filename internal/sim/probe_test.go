package sim

import (
	"errors"
	"strings"
	"testing"
)

// probeMod is a module with a configurable (possibly wrong) declaration.
type probeMod struct {
	name string
	eval func()
	sens Sensitivity
}

func (m *probeMod) Name() string { return m.name }

//lint:sensaudit deliberately misdeclared test module; the dynamic checker is the subject under test
func (m *probeMod) Eval() { m.eval() }

//lint:partwrite deliberately misdeclared test module; the dynamic checker is the subject under test
func (m *probeMod) Tick()                    {}
func (m *probeMod) Sensitivity() Sensitivity { return m.sens }

func TestSensitivityCheckUndeclaredRead(t *testing.T) {
	s := New()
	s.SetSensitivityCheck(true)
	in := s.NewWire("in")
	out := s.NewWire("out")
	// The module reads in but declares no Reads: a missed-wakeup bug the
	// checker must catch on the very first settle.
	s.Register(&probeMod{
		name: "bad-reader",
		eval: func() { out.Set(in.Get()) },
		sens: Sensitivity{Drives: []Signal{out}},
	})
	err := s.Step()
	if !errors.Is(err, ErrSensitivity) {
		t.Fatalf("Step: got %v, want ErrSensitivity", err)
	}
	var sv *SensitivityViolationError
	if !errors.As(err, &sv) {
		t.Fatalf("Step: error %v is not a *SensitivityViolationError", err)
	}
	if sv.Module != "bad-reader" || sv.Signal != "in" || sv.Kind != "read" {
		t.Fatalf("violation = %+v, want bad-reader/in/read", sv)
	}
}

func TestSensitivityCheckUndeclaredDrive(t *testing.T) {
	s := New()
	s.SetSensitivityCheck(true)
	out := s.NewWire("out")
	s.Register(&probeMod{
		name: "bad-driver",
		eval: func() { out.Set(true) },
		sens: Sensitivity{},
	})
	err := s.Step()
	var sv *SensitivityViolationError
	if !errors.As(err, &sv) {
		t.Fatalf("Step: got %v, want *SensitivityViolationError", err)
	}
	if sv.Kind != "drive" || sv.Signal != "out" {
		t.Fatalf("violation = %+v, want out/drive", sv)
	}
	if !strings.Contains(sv.Error(), "unsettled partition") {
		t.Fatalf("error %q does not explain the drive consequence", sv.Error())
	}
}

func TestSensitivityCheckDeclaredDriveLicensesReadBack(t *testing.T) {
	s := New()
	s.SetSensitivityCheck(true)
	out := s.NewWire("out")
	// Re-reading a signal the module itself drives (and declares) is legal:
	// the value can only change when the module changes it.
	s.Register(&probeMod{
		name: "read-back",
		eval: func() { out.Set(!out.Get()) },
		sens: Sensitivity{Drives: []Signal{out}},
	})
	// No other module reads out, so the settle converges after one wave; the
	// point is that the checker must not misreport the read-back.
	if err := s.Step(); err != nil {
		t.Fatalf("Step: got %v, want nil (read-back of a declared drive is legal)", err)
	}
}

func TestSensitivityCheckReadsAllExempt(t *testing.T) {
	s := New()
	s.SetSensitivityCheck(true)
	in := s.NewWire("in")
	out := s.NewWire("out")
	s.Register(&probeMod{
		name: "conservative",
		eval: func() { out.Set(in.Get()) },
		sens: ReadsEverything(),
	})
	if err := s.Step(); err != nil {
		t.Fatalf("Step: ReadsAll module must be exempt, got %v", err)
	}
	st := s.Stats()
	if len(st.ReadsAllModules) != 1 || st.ReadsAllModules[0] != "conservative" {
		t.Fatalf("Stats.ReadsAllModules = %v, want [conservative]", st.ReadsAllModules)
	}
	if !strings.Contains(st.String(), "readsall=1[conservative]") {
		t.Fatalf("Stats.String() = %q, want readsall report", st.String())
	}
}

func TestSensitivityCheckCleanDesign(t *testing.T) {
	s := New()
	s.SetSensitivityCheck(true)
	ch := s.NewChannel("ch", 4)
	snd := NewSender("snd", ch)
	rcv := NewReceiver("rcv", ch)
	s.Register(snd, rcv)
	snd.Push([]byte{1, 2, 3, 4})
	for i := 0; i < 10; i++ {
		if err := s.Step(); err != nil {
			t.Fatalf("Step %d: %v", i, err)
		}
	}
	if len(rcv.Received) != 1 {
		t.Fatalf("received %d payloads, want 1", len(rcv.Received))
	}
	if st := s.Stats(); st.Workers != 1 {
		t.Fatalf("checker must force sequential mode, workers=%d", st.Workers)
	}
}

func TestSensitivityCheckLegacyNoop(t *testing.T) {
	s := New()
	s.SetSensitivityCheck(true)
	s.SetLegacy(true)
	in := s.NewWire("in")
	out := s.NewWire("out")
	// Deliberately wrong declaration: the legacy kernel has no declarations
	// to audit, so this must run clean.
	s.Register(&probeMod{
		name: "legacy",
		eval: func() { out.Set(in.Get()) },
		sens: Sensitivity{},
	})
	if err := s.Step(); err != nil {
		t.Fatalf("Step under legacy kernel: %v", err)
	}
}
