package sim

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func payload(i int) []byte { return []byte{byte(i), byte(i >> 8), 0xab, 0xcd} }

func TestSenderReceiverTransfersAllPayloads(t *testing.T) {
	s := New()
	ch := s.NewChannel("ch", 4)
	snd := NewSender("snd", ch)
	rcv := NewReceiver("rcv", ch)
	s.Register(snd, rcv)

	const n = 10
	for i := 0; i < n; i++ {
		snd.Push(payload(i))
	}
	if _, err := s.Run(1000, func() bool { return len(rcv.Received) == n }); err != nil {
		t.Fatal(err)
	}
	for i, got := range rcv.Received {
		if !bytes.Equal(got, payload(i)) {
			t.Fatalf("payload %d: got %x want %x", i, got, payload(i))
		}
	}
	if ch.Starts() != n || ch.Ends() != n {
		t.Fatalf("starts=%d ends=%d, want %d", ch.Starts(), ch.Ends(), n)
	}
}

func TestBackToBackThroughputIsOnePerCycle(t *testing.T) {
	s := New()
	ch := s.NewChannel("ch", 4)
	snd := NewSender("snd", ch)
	rcv := NewReceiver("rcv", ch)
	s.Register(snd, rcv)

	const n = 100
	for i := 0; i < n; i++ {
		snd.Push(payload(i))
	}
	cycles, err := s.Run(1000, func() bool { return len(rcv.Received) == n })
	if err != nil {
		t.Fatal(err)
	}
	// One cycle to load the first payload, then one transaction per cycle.
	if cycles > n+2 {
		t.Fatalf("took %d cycles for %d back-to-back transfers", cycles, n)
	}
}

func TestJitteredReceiverStillReceivesInOrder(t *testing.T) {
	s := New()
	ch := s.NewChannel("ch", 4)
	snd := NewSender("snd", ch)
	rcv := NewReceiver("rcv", ch)
	rng := NewRand(7)
	rcv.Policy = JitterPolicy(rng, 30)
	snd.Gap = GapPolicy(rng, 0, 3)
	s.Register(snd, rcv)

	const n = 50
	for i := 0; i < n; i++ {
		snd.Push(payload(i))
	}
	if _, err := s.Run(10000, func() bool { return len(rcv.Received) == n }); err != nil {
		t.Fatal(err)
	}
	for i, got := range rcv.Received {
		if !bytes.Equal(got, payload(i)) {
			t.Fatalf("payload %d out of order: got %x", i, got)
		}
	}
}

func TestFifoPreservesOrderAndBoundsDepth(t *testing.T) {
	s := New()
	in := s.NewChannel("in", 4)
	out := s.NewChannel("out", 4)
	snd := NewSender("snd", in)
	fifo := NewFifo("fifo", in, out, 4)
	rcv := NewReceiver("rcv", out)
	rng := NewRand(3)
	rcv.Policy = JitterPolicy(rng, 20)
	s.Register(snd, fifo, rcv)

	const n = 40
	for i := 0; i < n; i++ {
		snd.Push(payload(i))
	}
	maxDepth := 0
	for len(rcv.Received) < n {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
		if fifo.Len() > maxDepth {
			maxDepth = fifo.Len()
		}
		if s.Cycle() > 10000 {
			t.Fatal("did not finish")
		}
	}
	if maxDepth > 4 {
		t.Fatalf("fifo exceeded depth: %d", maxDepth)
	}
	for i, got := range rcv.Received {
		if !bytes.Equal(got, payload(i)) {
			t.Fatalf("payload %d out of order", i)
		}
	}
}

// combLoop is a module that oscillates a wire, which must be detected as a
// combinational loop.
type combLoop struct{ w *Wire }

func (c *combLoop) Name() string { return "loop" }
func (c *combLoop) Eval()        { c.w.Set(!c.w.Get()) }
func (c *combLoop) Tick()        {}

func TestCombinationalLoopDetected(t *testing.T) {
	s := New()
	w := s.NewWire("osc")
	s.Register(&combLoop{w: w})
	err := s.Step()
	if !errors.Is(err, ErrCombLoop) {
		t.Fatalf("got %v, want ErrCombLoop", err)
	}
}

func TestDeadlockWatchdog(t *testing.T) {
	s := New()
	s.WatchdogWindow = 50
	ch := s.NewChannel("ch", 4)
	snd := NewSender("snd", ch)
	// No receiver: ready stays low, the transaction can never complete.
	s.Register(snd)
	snd.Push(payload(1))
	_, err := s.Run(10000, nil)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("got %v, want ErrDeadlock", err)
	}
}

func TestChannelEventCountsSingleCycleTransaction(t *testing.T) {
	s := New()
	ch := s.NewChannel("ch", 1)
	snd := NewSender("snd", ch)
	rcv := NewReceiver("rcv", ch)
	probe := &eventProbe{ch: ch}
	s.Register(snd, rcv, probe)
	snd.Push([]byte{9})
	if _, err := s.Run(100, func() bool { return len(rcv.Received) == 1 }); err != nil {
		t.Fatal(err)
	}
	if probe.starts != 1 || probe.ends != 1 {
		t.Fatalf("starts=%d ends=%d, want 1/1", probe.starts, probe.ends)
	}
	if !probe.sameCycle {
		t.Fatal("single-cycle transaction should start and end in the same cycle")
	}
}

type eventProbe struct {
	ch           *Channel
	starts, ends int
	sameCycle    bool
}

func (p *eventProbe) Name() string { return "probe" }
func (p *eventProbe) Eval()        {}
func (p *eventProbe) Tick() {
	if p.ch.StartedNow() {
		p.starts++
	}
	if p.ch.Fired() {
		p.ends++
	}
	if p.ch.StartedNow() && p.ch.Fired() {
		p.sameCycle = true
	}
}

func TestDataSetUint64RoundTrip(t *testing.T) {
	s := New()
	f := func(v uint64) bool {
		d := s.NewData("d", 8)
		d.SetUint64(v)
		return d.Uint64() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDataNarrowBusTruncates(t *testing.T) {
	s := New()
	d := s.NewData("d", 2)
	d.SetUint64(0x1234_5678)
	if d.Uint64() != 0x5678 {
		t.Fatalf("got %#x, want 0x5678", d.Uint64())
	}
}

func TestDataSetShorterZeroFills(t *testing.T) {
	s := New()
	d := s.NewData("d", 4)
	d.Set([]byte{1, 2, 3, 4})
	d.Set([]byte{9})
	want := []byte{9, 0, 0, 0}
	if !bytes.Equal(d.Get(), want) {
		t.Fatalf("got %x want %x", d.Get(), want)
	}
}

func TestDeterministicReplayOfKernel(t *testing.T) {
	run := func(seed int64) []string {
		s := New()
		ch := s.NewChannel("ch", 4)
		snd := NewSender("snd", ch)
		rcv := NewReceiver("rcv", ch)
		rng := NewRand(seed)
		rcv.Policy = JitterPolicy(rng, 40)
		snd.Gap = GapPolicy(rng, 0, 2)
		s.Register(snd, rcv)
		for i := 0; i < 20; i++ {
			snd.Push(payload(i))
		}
		var log []string
		for len(rcv.Received) < 20 {
			if err := s.Step(); err != nil {
				t.Fatal(err)
			}
			log = append(log, fmt.Sprintf("%d:%d", s.Cycle(), len(rcv.Received)))
		}
		return log
	}
	a, b := run(11), run(11)
	if len(a) != len(b) {
		t.Fatalf("non-deterministic run length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at step %d: %s vs %s", i, a[i], b[i])
		}
	}
	c := run(12)
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical timing (jitter not applied)")
		}
	}
}

// TestDeadlockErrorStructure checks that the watchdog error names the stuck
// channel and its start cycle while still matching the ErrDeadlock sentinel.
func TestDeadlockErrorStructure(t *testing.T) {
	s := New()
	s.WatchdogWindow = 50
	ch := s.NewChannel("wedged.ch", 4)
	snd := NewSender("snd", ch)
	// No receiver: the handshake starts but can never complete.
	s.Register(snd)
	snd.Push(payload(1))
	_, err := s.Run(10000, nil)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("errors.Is(err, ErrDeadlock) = false for %v", err)
	}
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("error is not a *DeadlockError: %v", err)
	}
	if len(de.Stuck) != 1 || de.Stuck[0].Name != "wedged.ch" {
		t.Fatalf("Stuck = %+v, want exactly wedged.ch", de.Stuck)
	}
	if de.Cycle <= de.LastFire {
		t.Fatalf("Cycle %d not after LastFire %d", de.Cycle, de.LastFire)
	}
	if got := de.Error(); !strings.Contains(got, "wedged.ch") {
		t.Fatalf("Error() does not name the stuck channel: %q", got)
	}
}
