package sim

import "bytes"

// sigcore is the scheduler-facing metadata embedded in every signal (Wire
// and Data): a dense id and partition assigned at Build time, plus the list
// of modules whose Eval reads the signal. When a signal changes value the
// scheduler marks those readers pending instead of re-running every module.
type sigcore struct {
	sim     *Simulator
	id      int32
	part    int32   // owning partition (the driver's component); -1 if unobserved
	readers []int32 // reader modules in the signal's own partition
	// remote lists reader modules in other partitions. A change enqueues the
	// signal in the owner partition's outbox (mailbox) instead of marking the
	// remote readers directly, so pending bits are never written across
	// workers; the scheduler drains outboxes single-threaded at layer
	// barriers. queued dedups the enqueue (set by the owner's worker, cleared
	// by the drain, which only runs while no workers are active).
	remote []int32
	queued bool
}

func (g *sigcore) sigmeta() *sigcore { return g }

// changed routes a value change either to the sensitivity scheduler (mark
// readers pending) or, on the legacy kernel, to the global changed flag.
func (g *sigcore) changed() {
	if sc := g.sim.sched; sc != nil {
		sc.touched(g)
	} else {
		g.sim.legacyChanged = true
	}
}

// Wire is a single-bit signal. Writes take effect immediately within the
// combinational phase; the simulator re-evaluates the modules that read the
// wire (or, on the legacy kernel, every module) until no wire changes.
//
// Storage is struct-of-arrays: the value and generation counter live in
// slabs owned by the Simulator, grouped by partition so parallel partitions
// never share cache lines. The Wire itself is a thin handle; until the first
// Build the pointers target the handle's own inline fields.
type Wire struct {
	sigcore
	name string
	val  bool    // inline storage until Build moves the value into a slab
	vp   *bool   // current value location (slab after Build)
	genv uint64  // inline generation storage
	gp   *uint64 // generation counter location; bumped on every value change
}

// NewWire creates a named single-bit wire.
func (s *Simulator) NewWire(name string) *Wire {
	w := &Wire{sigcore: sigcore{sim: s}, name: name}
	w.vp = &w.val
	w.gp = &w.genv
	s.wires = append(s.wires, w)
	s.invalidate()
	return w
}

// Name returns the wire's name.
func (w *Wire) Name() string { return w.name }

// Get returns the wire's current value.
func (w *Wire) Get() bool {
	if p := w.sim.probe; p != nil {
		p.onRead(&w.sigcore)
	}
	return *w.vp
}

// peek reads the value without consulting the sensitivity probe; the
// scheduler's quiescence scan uses it so batching can never register as a
// module's signal access.
func (w *Wire) peek() bool { return *w.vp }

// gen returns the wire's change-generation counter. It increments on every
// effective Set, never resets (Build carries it across slab rebuilds), and
// lets observers such as the VCD writer skip compare work for signals that
// provably did not change.
func (w *Wire) gen() uint64 { return *w.gp }

// Set drives the wire. A change of value re-triggers the combinational
// settle of the wire's readers.
func (w *Wire) Set(v bool) {
	if p := w.sim.probe; p != nil {
		p.onWrite(&w.sigcore)
	}
	if *w.vp != v {
		*w.vp = v
		*w.gp++
		w.sigcore.changed()
	}
}

// Data is a multi-byte bus (the DATA payload of a channel, an address bus,
// and so on). Width is fixed at creation. Like Wire, it is a thin handle:
// after Build the payload bytes live in a per-partition arena slab.
type Data struct {
	sigcore
	name  string
	width int
	val   []byte // re-sliced into the partition arena at Build
	genv  uint64
	gp    *uint64
}

// NewData creates a named bus of width bytes, initialised to zero.
func (s *Simulator) NewData(name string, width int) *Data {
	d := &Data{sigcore: sigcore{sim: s}, name: name, width: width, val: make([]byte, width)}
	d.gp = &d.genv
	s.datas = append(s.datas, d)
	s.invalidate()
	return d
}

// Name returns the bus's name.
func (d *Data) Name() string { return d.name }

// Width returns the bus width in bytes.
func (d *Data) Width() int { return d.width }

// gen returns the bus's change-generation counter; see Wire.gen.
func (d *Data) gen() uint64 { return *d.gp }

// Get returns the bus's current value. The returned slice is the live
// backing array; callers must not modify it. Use Snapshot for a copy.
func (d *Data) Get() []byte {
	if p := d.sim.probe; p != nil {
		p.onRead(&d.sigcore)
	}
	return d.val
}

// Snapshot returns a copy of the bus's current value.
func (d *Data) Snapshot() []byte {
	if p := d.sim.probe; p != nil {
		p.onRead(&d.sigcore)
	}
	c := make([]byte, d.width)
	copy(c, d.val)
	return c
}

// Set drives the bus. b is copied; if b is shorter than the bus width the
// remaining bytes are zeroed. A change of value re-triggers the settle of
// the bus's readers.
func (d *Data) Set(b []byte) {
	if p := d.sim.probe; p != nil {
		p.onWrite(&d.sigcore)
	}
	if len(b) > d.width {
		b = b[:d.width]
	}
	if bytes.Equal(d.val[:len(b)], b) && allZero(d.val[len(b):]) {
		return
	}
	copy(d.val, b)
	for i := len(b); i < d.width; i++ {
		d.val[i] = 0
	}
	*d.gp++
	d.sigcore.changed()
}

// SetUint64 drives the low 8 bytes of the bus little-endian (or fewer if the
// bus is narrower) and zeroes the rest.
func (d *Data) SetUint64(v uint64) {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	n := 8
	if d.width < n {
		n = d.width
	}
	d.Set(buf[:n])
}

// Uint64 interprets the low 8 bytes of the bus as a little-endian integer.
func (d *Data) Uint64() uint64 {
	if p := d.sim.probe; p != nil {
		p.onRead(&d.sigcore)
	}
	var v uint64
	n := 8
	if d.width < n {
		n = d.width
	}
	for i := 0; i < n; i++ {
		v |= uint64(d.val[i]) << (8 * i)
	}
	return v
}

func allZero(b []byte) bool {
	for _, x := range b {
		if x != 0 {
			return false
		}
	}
	return true
}

// slabPad is the false-sharing guard between partition regions in the
// signal slabs: no two partitions' state may share a 64-byte cache line.
const slabPad = 64

// buildSlabs moves every signal's value and generation state into
// struct-of-arrays slabs grouped by owning partition, with padding between
// partition regions so parallel settles never contend on a cache line.
// Current values and generation counters are carried over — generations are
// monotone across rebuilds, which is what lets observers cache them.
func (s *Simulator) buildSlabs(nparts int) {
	// Bucket signals by partition; unobserved signals (-1) share a trailing
	// region, which is safe because nothing concurrent ever touches them.
	bucket := func(part int32) int {
		if part < 0 {
			return nparts
		}
		return int(part)
	}
	wiresBy := make([][]*Wire, nparts+1)
	datasBy := make([][]*Data, nparts+1)
	bytesNeeded := 0
	for _, w := range s.wires {
		b := bucket(w.part)
		wiresBy[b] = append(wiresBy[b], w)
	}
	for _, d := range s.datas {
		b := bucket(d.part)
		datasBy[b] = append(datasBy[b], d)
		bytesNeeded += d.width
	}

	nsig := len(s.wires) + len(s.datas)
	bools := make([]bool, len(s.wires)+slabPad*(nparts+1))
	gens := make([]uint64, nsig+(slabPad/8+1)*(nparts+1))
	// Each partition region costs at most one alignment round-up plus one
	// trailing pad on top of its payload bytes.
	arena := make([]byte, bytesNeeded+2*slabPad*(nparts+1))

	bi, gi, ai := 0, 0, 0
	for p := 0; p <= nparts; p++ {
		ai = (ai + slabPad - 1) &^ (slabPad - 1)
		for _, w := range wiresBy[p] {
			bools[bi] = *w.vp
			gens[gi] = *w.gp
			w.vp = &bools[bi]
			w.gp = &gens[gi]
			bi++
			gi++
		}
		for _, d := range datasBy[p] {
			gens[gi] = *d.gp
			d.gp = &gens[gi]
			gi++
			copy(arena[ai:ai+d.width], d.val)
			d.val = arena[ai : ai+d.width : ai+d.width]
			ai += d.width
		}
		bi += slabPad
		gi += slabPad / 8
		ai += slabPad
	}
	s.slabBools, s.slabGens, s.slabArena = bools, gens, arena
}
