package sim

import "bytes"

// sigcore is the scheduler-facing metadata embedded in every signal (Wire
// and Data): a dense id and partition assigned at Build time, plus the list
// of modules whose Eval reads the signal. When a signal changes value the
// scheduler marks those readers pending instead of re-running every module.
type sigcore struct {
	sim     *Simulator
	id      int32
	part    int32   // partition of the signal's component; -1 if unobserved
	readers []int32 // module indices whose Eval reads this signal
}

func (g *sigcore) sigmeta() *sigcore { return g }

// changed routes a value change either to the sensitivity scheduler (mark
// readers pending) or, on the legacy kernel, to the global changed flag.
func (g *sigcore) changed() {
	if sc := g.sim.sched; sc != nil {
		sc.touched(g)
	} else {
		g.sim.legacyChanged = true
	}
}

// Wire is a single-bit signal. Writes take effect immediately within the
// combinational phase; the simulator re-evaluates the modules that read the
// wire (or, on the legacy kernel, every module) until no wire changes.
type Wire struct {
	sigcore
	name string
	val  bool
}

// NewWire creates a named single-bit wire.
func (s *Simulator) NewWire(name string) *Wire {
	w := &Wire{sigcore: sigcore{sim: s}, name: name}
	s.wires = append(s.wires, w)
	s.invalidate()
	return w
}

// Name returns the wire's name.
func (w *Wire) Name() string { return w.name }

// Get returns the wire's current value.
func (w *Wire) Get() bool {
	if p := w.sim.probe; p != nil {
		p.onRead(&w.sigcore)
	}
	return w.val
}

// Set drives the wire. A change of value re-triggers the combinational
// settle of the wire's readers.
func (w *Wire) Set(v bool) {
	if p := w.sim.probe; p != nil {
		p.onWrite(&w.sigcore)
	}
	if w.val != v {
		w.val = v
		w.sigcore.changed()
	}
}

// Data is a multi-byte bus (the DATA payload of a channel, an address bus,
// and so on). Width is fixed at creation.
type Data struct {
	sigcore
	name  string
	width int
	val   []byte
}

// NewData creates a named bus of width bytes, initialised to zero.
func (s *Simulator) NewData(name string, width int) *Data {
	d := &Data{sigcore: sigcore{sim: s}, name: name, width: width, val: make([]byte, width)}
	s.datas = append(s.datas, d)
	s.invalidate()
	return d
}

// Name returns the bus's name.
func (d *Data) Name() string { return d.name }

// Width returns the bus width in bytes.
func (d *Data) Width() int { return d.width }

// Get returns the bus's current value. The returned slice is the live
// backing array; callers must not modify it. Use Snapshot for a copy.
func (d *Data) Get() []byte {
	if p := d.sim.probe; p != nil {
		p.onRead(&d.sigcore)
	}
	return d.val
}

// Snapshot returns a copy of the bus's current value.
func (d *Data) Snapshot() []byte {
	if p := d.sim.probe; p != nil {
		p.onRead(&d.sigcore)
	}
	c := make([]byte, d.width)
	copy(c, d.val)
	return c
}

// Set drives the bus. b is copied; if b is shorter than the bus width the
// remaining bytes are zeroed. A change of value re-triggers the settle of
// the bus's readers.
func (d *Data) Set(b []byte) {
	if p := d.sim.probe; p != nil {
		p.onWrite(&d.sigcore)
	}
	if len(b) > d.width {
		b = b[:d.width]
	}
	if bytes.Equal(d.val[:len(b)], b) && allZero(d.val[len(b):]) {
		return
	}
	copy(d.val, b)
	for i := len(b); i < d.width; i++ {
		d.val[i] = 0
	}
	d.sigcore.changed()
}

// SetUint64 drives the low 8 bytes of the bus little-endian (or fewer if the
// bus is narrower) and zeroes the rest.
func (d *Data) SetUint64(v uint64) {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	n := 8
	if d.width < n {
		n = d.width
	}
	d.Set(buf[:n])
}

// Uint64 interprets the low 8 bytes of the bus as a little-endian integer.
func (d *Data) Uint64() uint64 {
	if p := d.sim.probe; p != nil {
		p.onRead(&d.sigcore)
	}
	var v uint64
	n := 8
	if d.width < n {
		n = d.width
	}
	for i := 0; i < n; i++ {
		v |= uint64(d.val[i]) << (8 * i)
	}
	return v
}

func allZero(b []byte) bool {
	for _, x := range b {
		if x != 0 {
			return false
		}
	}
	return true
}
