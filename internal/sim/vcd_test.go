package sim

import (
	"bytes"
	"strings"
	"testing"
)

func TestVCDWriterStructure(t *testing.T) {
	s := New()
	ch := s.NewChannel("dut.in", 2)
	snd := NewSender("snd", ch)
	rcv := NewReceiver("rcv", ch)
	rng := NewRand(4)
	rcv.Policy = JitterPolicy(rng, 50)
	var buf bytes.Buffer
	vcd := NewVCDWriter(s, &buf, ch)
	s.Register(snd, rcv, vcd)

	snd.Push([]byte{0x34, 0x12})
	snd.Push([]byte{0xff, 0x00})
	if _, err := s.Run(200, func() bool { return len(rcv.Received) == 2 }); err != nil {
		t.Fatal(err)
	}
	if err := vcd.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"$timescale", "$enddefinitions $end",
		"$var wire 1", "dut.in.valid", "dut.in.ready",
		"$var wire 16", "dut.in.data",
		"#0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("VCD missing %q:\n%s", want, out)
		}
	}
	// The first payload 0x1234 must appear as a binary literal.
	if !strings.Contains(out, "b1001000110100 ") {
		t.Fatalf("payload bits missing from dump:\n%s", out)
	}
	// Value-change semantics: valid toggles at least twice (two handshakes
	// with a reload in between or an end-of-stream drop).
	if strings.Count(out, "\n1"+idOf(out, "dut.in.valid")) == 0 {
		t.Fatal("valid never rose")
	}
}

// idOf extracts the VCD identifier assigned to a signal name.
func idOf(dump, name string) string {
	for _, line := range strings.Split(dump, "\n") {
		if strings.Contains(line, " "+name+" ") && strings.HasPrefix(line, "$var") {
			f := strings.Fields(line)
			return f[3]
		}
	}
	return "\x00"
}

func TestVCDBitsOf(t *testing.T) {
	cases := []struct {
		in   []byte
		want string
	}{
		{[]byte{0}, "0"},
		{[]byte{1}, "1"},
		{[]byte{0x80}, "10000000"},
		{[]byte{0x34, 0x12}, "1001000110100"},
		{[]byte{0, 0}, "0"},
	}
	for _, c := range cases {
		if got := bitsOf(c.in); got != c.want {
			t.Fatalf("bitsOf(%x) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestVCDIDsAreUniquePrintable(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		id := vcdID(i)
		if seen[id] {
			t.Fatalf("duplicate id %q at %d", id, i)
		}
		seen[id] = true
		for _, r := range id {
			if r < 33 || r > 126 {
				t.Fatalf("id %q contains non-printable rune", id)
			}
		}
	}
}
