package sim

import (
	"fmt"
	"strconv"

	"vidi/internal/telemetry"
)

// SetTelemetry attaches a metrics/tracing sink to the simulator. The
// scheduler keeps its counters on plain per-partition fields (each written
// only by the partition's own worker) and registers a fold-the-deltas
// callback that copies them into the sink when it is scraped — telemetry
// never adds synchronisation or allocation to the hot path, which is what
// keeps instrumented golden runs byte-identical, including under -race.
//
// A nil sink detaches instrumentation. The schedule is rebuilt lazily on
// the next Step.
func (s *Simulator) SetTelemetry(sink *telemetry.Sink) {
	s.tel = sink
	s.invalidate()
}

// schedGather is the per-partition delta state one bindTelemetry call
// tracks between scrapes, so re-gathering (vidi-top after -metrics) never
// double-counts.
type schedGather struct {
	evals, waves, skipped, tickSkips *telemetry.Counter
	wakes, busy, evalNS              *telemetry.Counter
	lastEvals, lastWaves             uint64
	lastSkipped, lastTickSkips       uint64
	lastWakes, lastBusy, lastEvalNS  uint64
}

// bindTelemetry registers the schedule's series with the sink: shape gauges
// set once, per-partition counters folded on scrape, and (with tracing) one
// Perfetto track per partition carrying coalesced busy spans.
func (sc *scheduler) bindTelemetry(sink *telemetry.Sink) {
	sc.timed = true
	sink.Gauge("vidi_sched_partitions",
		"Independent components of the sensitivity graph.").Set(float64(len(sc.parts)))
	sink.Gauge("vidi_sched_layers",
		"Settle layers of the partition dependency DAG.").Set(float64(len(sc.layers)))
	sink.Gauge("vidi_sched_workers",
		"Worker goroutines used per settle/tick phase.").Set(float64(sc.workers))
	sink.Gauge("vidi_sched_modules",
		"Registered modules in the schedule.").Set(float64(len(sc.mods)))
	cycles := sink.Gauge("vidi_sched_cycles",
		"Completed clock cycles at the last scrape.")
	batched := sink.Counter("vidi_sched_batched_cycles_total",
		"Clock cycles skipped wholesale by quiescence batching.")
	var lastBatched uint64
	workerBusy := make([]*telemetry.Counter, len(sc.workerBusy))
	lastWorkerBusy := make([]uint64, len(sc.workerBusy))
	for i := range workerBusy {
		workerBusy[i] = sink.Counter("vidi_sched_worker_busy_total",
			"Partition settles/ticks processed by the worker slot (observational split).",
			telemetry.L("worker", strconv.Itoa(i)))
	}

	gs := make([]schedGather, len(sc.parts))
	for i := range sc.parts {
		lbl := telemetry.L("partition", strconv.Itoa(i))
		gs[i] = schedGather{
			evals: sink.Counter("vidi_sched_evals_total",
				"Module Eval invocations.", lbl),
			waves: sink.Counter("vidi_sched_waves_total",
				"Settle iterations (delta cycles).", lbl),
			skipped: sink.Counter("vidi_sched_skipped_evals_total",
				"Eval calls avoided relative to the legacy fixpoint.", lbl),
			tickSkips: sink.Counter("vidi_sched_skipped_ticks_total",
				"Tick calls avoided by clock-edge gating.", lbl),
			wakes: sink.Counter("vidi_sched_wakeups_total",
				"Event-driven pending marks (signal changes and Touch hooks).", lbl),
			busy: sink.Counter("vidi_sched_busy_cycles_total",
				"Cycles in which the partition ran at least one Eval; against vidi_sched_cycles this is the worker-pool occupancy.", lbl),
			evalNS: sink.Counter("vidi_sched_eval_ns_total",
				"Wall-clock nanoseconds spent settling the partition, sampled one cycle in 16 and scaled.", lbl),
		}
		if sink.Tracing() {
			sc.parts[i].track = sink.Track("scheduler", fmt.Sprintf("partition %d", i))
		}
	}
	sink.OnGather(func() {
		cycles.Set(float64(sc.sim.cycle))
		batched.Add(sc.batchedCycles - lastBatched)
		lastBatched = sc.batchedCycles
		for i := range workerBusy {
			workerBusy[i].Add(sc.workerBusy[i] - lastWorkerBusy[i])
			lastWorkerBusy[i] = sc.workerBusy[i]
		}
		for i := range sc.parts {
			p, g := &sc.parts[i], &gs[i]
			g.evals.Add(p.evals - g.lastEvals)
			g.waves.Add(p.waves - g.lastWaves)
			g.skipped.Add(p.skipped - g.lastSkipped)
			g.tickSkips.Add(p.tickSkips - g.lastTickSkips)
			g.wakes.Add(p.wakes - g.lastWakes)
			g.busy.Add(p.busyCycles - g.lastBusy)
			g.evalNS.Add(p.evalNS - g.lastEvalNS)
			g.lastEvals, g.lastWaves = p.evals, p.waves
			g.lastSkipped, g.lastTickSkips = p.skipped, p.tickSkips
			g.lastWakes, g.lastBusy, g.lastEvalNS = p.wakes, p.busyCycles, p.evalNS
			if p.spanOpen {
				p.track.Span("busy", p.spanStart, p.spanEnd)
				p.spanOpen = false
			}
		}
	})
}
