package sim

import (
	"errors"
	"fmt"
)

// ErrSensitivity is the sentinel wrapped by SensitivityViolationError.
var ErrSensitivity = errors.New("sim: sensitivity violation")

// SensitivityViolationError reports a mismatch between a module's declared
// Sensitivity and the signal accesses its Eval actually performed, caught by
// the dynamic sensitivity checker (SetSensitivityCheck). An undeclared read
// means the scheduler may fail to re-evaluate the module when that signal
// changes (a missed wakeup); an undeclared drive means a change the module
// makes may not propagate to the signal's readers (an unsettled partition).
type SensitivityViolationError struct {
	// Module is the offending module's name.
	Module string
	// Signal is the accessed signal's name.
	Signal string
	// Kind is "read" or "drive".
	Kind string
	// Cycle is the clock cycle at which the access was observed.
	Cycle uint64
}

// Error implements error.
func (e *SensitivityViolationError) Error() string {
	consequence := "missed wakeup"
	if e.Kind == "drive" {
		consequence = "unsettled partition"
	}
	return fmt.Sprintf("%v: module %q %s of undeclared signal %q at cycle %d (%s)",
		ErrSensitivity, e.Module, e.Kind, e.Signal, e.Cycle, consequence)
}

// Unwrap keeps errors.Is(err, ErrSensitivity) working.
func (e *SensitivityViolationError) Unwrap() error { return ErrSensitivity }

// sensProbe is the dynamic sensitivity checker's recording state. While a
// module's Eval runs under the sensitivity scheduler, the instrumented Wire
// and Data accessors record every signal read and write here; after the Eval
// returns, the scheduler cross-checks the record against the module's
// declared Sensitivity. The probe is nil unless SetSensitivityCheck(true)
// was called, so the accessor fast path costs a single pointer test.
//
// The probe forces the scheduler into sequential mode (workers=1), so the
// record is never shared between goroutines. Sequential execution does not
// change simulation results — partitions are independent by construction —
// so golden traces stay byte-identical with the checker enabled.
type sensProbe struct {
	// active marks that a module Eval is in progress.
	active bool
	reads  []*sigcore
	writes []*sigcore

	// declared sensitivity per module index; nil entries are ReadsAll
	// modules, which the checker skips (they are re-evaluated on every
	// wave, so no access of theirs can be a missed wakeup).
	reads2  []map[*sigcore]struct{}
	drives2 []map[*sigcore]struct{}

	// names resolves a sigcore back to its signal for error messages.
	names map[*sigcore]string
}

func (p *sensProbe) begin() {
	p.active = true
	p.reads = p.reads[:0]
	p.writes = p.writes[:0]
}

func (p *sensProbe) end() { p.active = false }

func (p *sensProbe) onRead(g *sigcore) {
	if p.active {
		p.reads = append(p.reads, g)
	}
}

func (p *sensProbe) onWrite(g *sigcore) {
	if p.active {
		p.writes = append(p.writes, g)
	}
}

// check cross-checks the accesses recorded for module index mi against its
// declared sensitivity. A declared drive also licenses a read-back: a module
// re-reading its own output cannot miss a wakeup, because the value only
// changes when the module itself changes it.
func (p *sensProbe) check(mi int, name string, cycle uint64) error {
	reads, drives := p.reads2[mi], p.drives2[mi]
	if reads == nil && drives == nil {
		return nil // ReadsAll fallback: every wave re-evaluates the module
	}
	for _, g := range p.reads {
		if _, ok := reads[g]; ok {
			continue
		}
		if _, ok := drives[g]; ok {
			continue
		}
		return &SensitivityViolationError{Module: name, Signal: p.names[g], Kind: "read", Cycle: cycle}
	}
	for _, g := range p.writes {
		if _, ok := drives[g]; !ok {
			return &SensitivityViolationError{Module: name, Signal: p.names[g], Kind: "drive", Cycle: cycle}
		}
	}
	return nil
}

// SetSensitivityCheck enables (or disables) the dynamic sensitivity checker:
// while enabled, every signal read and write performed by a module's Eval
// under the sensitivity scheduler is recorded and cross-checked against the
// module's declared Sensitivity, and the first mismatch aborts Step with a
// *SensitivityViolationError. ReadsAll modules are exempt, as is the legacy
// kernel (SetLegacy), which has no declarations to audit.
//
// The checker is the runtime complement of the static `vidi-lint sensaudit`
// analyzer: the analyzer proves declaration hygiene for code it can resolve
// at compile time, the checker audits whatever actually executes — including
// dynamically constructed designs such as the fuzzer's. Checking forces the
// scheduler into sequential mode; results are unchanged, only parallelism is
// lost, so it is cheap enough to leave on in tests.
func (s *Simulator) SetSensitivityCheck(on bool) {
	s.sensCheck = on
	s.invalidate()
}

// SensitivityCheck reports whether the dynamic sensitivity checker is on.
func (s *Simulator) SensitivityCheck() bool { return s.sensCheck }

// buildProbe compiles the declared-sensitivity lookup tables for the dynamic
// checker. Called from Build after sens has been resolved for every module.
func (s *Simulator) buildProbe(sens []Sensitivity) *sensProbe {
	p := &sensProbe{
		reads2:  make([]map[*sigcore]struct{}, len(sens)),
		drives2: make([]map[*sigcore]struct{}, len(sens)),
		names:   make(map[*sigcore]string, len(s.wires)+len(s.datas)),
	}
	for _, w := range s.wires {
		p.names[&w.sigcore] = w.name
	}
	for _, d := range s.datas {
		p.names[&d.sigcore] = d.name
	}
	for i := range sens {
		if sens[i].ReadsAll {
			continue // nil maps mark the exempt ReadsAll fallback
		}
		r := make(map[*sigcore]struct{}, len(sens[i].Reads))
		for _, sg := range sens[i].Reads {
			r[sg.sigmeta()] = struct{}{}
		}
		d := make(map[*sigcore]struct{}, len(sens[i].Drives))
		for _, sg := range sens[i].Drives {
			d[sg.sigmeta()] = struct{}{}
		}
		p.reads2[i], p.drives2[i] = r, d
	}
	return p
}
