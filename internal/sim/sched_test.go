package sim

import (
	"errors"
	"fmt"
	"testing"
)

// nopModule is a minimal module with a configurable name.
type nopModule struct{ name string }

func (m *nopModule) Name() string { return m.name }
func (m *nopModule) Eval()        {}
func (m *nopModule) Tick()        {}

func TestBuildRejectsDuplicateModuleName(t *testing.T) {
	s := New()
	s.Register(&nopModule{name: "dup"}, &nopModule{name: "dup"})
	err := s.Build()
	if err == nil {
		t.Fatal("Build accepted two modules named \"dup\"")
	}
	if !errors.Is(err, ErrDuplicateName) {
		t.Fatalf("err = %v, want ErrDuplicateName", err)
	}
	var dn *DuplicateNameError
	if !errors.As(err, &dn) {
		t.Fatalf("err = %T, want *DuplicateNameError", err)
	}
	if dn.Kind != "module" || dn.Name != "dup" {
		t.Fatalf("got %q %q, want module dup", dn.Kind, dn.Name)
	}
	// Step surfaces the same error through the lazy build.
	if err := s.Step(); !errors.Is(err, ErrDuplicateName) {
		t.Fatalf("Step() = %v, want ErrDuplicateName", err)
	}
}

func TestBuildRejectsDuplicateSignalAndChannelNames(t *testing.T) {
	cases := []struct {
		kind string
		prep func(s *Simulator)
	}{
		{"wire", func(s *Simulator) { s.NewWire("w"); s.NewWire("w") }},
		{"data", func(s *Simulator) { s.NewData("d", 32); s.NewData("d", 32) }},
		// A channel owns a wire/data triple under derived names, so two
		// channels with one name collide on those too; the channel check runs
		// first so the error names the channel, not a derived wire.
		{"channel", func(s *Simulator) { s.NewChannel("ch", 4); s.NewChannel("ch", 4) }},
	}
	for _, tc := range cases {
		t.Run(tc.kind, func(t *testing.T) {
			s := New()
			tc.prep(s)
			err := s.Build()
			var dn *DuplicateNameError
			if !errors.As(err, &dn) {
				t.Fatalf("Build() = %v, want *DuplicateNameError", err)
			}
			if dn.Kind == "" || dn.Name == "" {
				t.Fatalf("empty fields in %+v", dn)
			}
		})
	}
}

// buildPipelines constructs n independent sender→fifo→receiver pipelines and
// returns the receivers' channels for observation. With jitter set the
// receivers follow a seeded random readiness policy (so the pipelines
// exercise interesting interleavings); without it they are always ready and
// the whole design goes quiet once drained.
func buildPipelines(s *Simulator, n, payloads int, jitter bool) ([]*Sender, []*Channel) {
	senders := make([]*Sender, n)
	outs := make([]*Channel, n)
	for i := 0; i < n; i++ {
		in := s.NewChannel(fmt.Sprintf("p%d.in", i), 4)
		out := s.NewChannel(fmt.Sprintf("p%d.out", i), 4)
		snd := NewSender(fmt.Sprintf("p%d.snd", i), in)
		fifo := NewFifo(fmt.Sprintf("p%d.fifo", i), in, out, 2)
		rcv := NewReceiver(fmt.Sprintf("p%d.rcv", i), out)
		if jitter {
			rng := NewRand(int64(1000 + i))
			rcv.Policy = JitterPolicy(rng, 70)
		}
		s.Register(snd, fifo, rcv)
		for p := 0; p < payloads; p++ {
			snd.Push(payload(i*100 + p))
		}
		senders[i] = snd
		outs[i] = out
	}
	return senders, outs
}

// tapProbe records every payload that fires on a channel, with the cycle.
type tapProbe struct {
	NullEval
	name string
	s    *Simulator
	ch   *Channel
	log  []string
}

func (p *tapProbe) Name() string { return p.name }
func (p *tapProbe) Tick() {
	if p.ch.Fired() {
		p.log = append(p.log, fmt.Sprintf("%d:%x", p.s.Cycle(), p.ch.Data.Get()))
	}
}

// runPipelines executes the n-pipeline design under the given kernel config
// and returns each pipeline's fire log.
func runPipelines(t *testing.T, n, payloads, workers int, legacy bool) [][]string {
	t.Helper()
	s := New()
	s.SetLegacy(legacy)
	if workers > 0 {
		s.SetWorkers(workers)
	}
	senders, outs := buildPipelines(s, n, payloads, true)
	probes := make([]*tapProbe, n)
	for i, out := range outs {
		probes[i] = &tapProbe{name: fmt.Sprintf("p%d.tap", i), s: s, ch: out}
		s.Register(probes[i])
		s.Tie(probes[i], senders[i]) // keep the probe with its pipeline
	}
	done := func() bool {
		for _, snd := range senders {
			if !snd.Idle() {
				return false
			}
		}
		return true
	}
	if _, err := s.Run(100000, done); err != nil {
		t.Fatalf("run (workers=%d legacy=%v): %v", workers, legacy, err)
	}
	if !legacy {
		st := s.Stats()
		if st.Partitions < n {
			t.Fatalf("got %d partitions for %d independent pipelines", st.Partitions, n)
		}
	}
	logs := make([][]string, n)
	for i, p := range probes {
		logs[i] = p.log
	}
	return logs
}

// TestPartitionedParallelMatchesLegacy is the kernel's determinism
// regression: N independent pipelines must produce cycle-identical fire
// sequences on the legacy fixpoint kernel, the sequential scheduler, and the
// parallel scheduler. Running it under -race also verifies that partitions
// share no state.
func TestPartitionedParallelMatchesLegacy(t *testing.T) {
	const n, payloads = 8, 50
	ref := runPipelines(t, n, payloads, 1, true)
	for _, cfg := range []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{"parallel4", 4},
		{"parallel-default", 0},
	} {
		got := runPipelines(t, n, payloads, cfg.workers, false)
		for i := range ref {
			if len(got[i]) != len(ref[i]) {
				t.Fatalf("%s: pipeline %d fired %d times, legacy %d",
					cfg.name, i, len(got[i]), len(ref[i]))
			}
			for j := range ref[i] {
				if got[i][j] != ref[i][j] {
					t.Fatalf("%s: pipeline %d event %d = %s, legacy %s",
						cfg.name, i, j, got[i][j], ref[i][j])
				}
			}
		}
	}
}

func TestStatsCountSkippedEvals(t *testing.T) {
	s := New()
	senders, _ := buildPipelines(s, 2, 3, false)
	done := func() bool { return senders[0].Idle() && senders[1].Idle() }
	if _, err := s.Run(10000, done); err != nil {
		t.Fatal(err)
	}
	// Drain the Touch marks left by the final active cycle, then idle the
	// design: every module is stable, so the dirty-set kernel should stop
	// evaluating entirely.
	for i := 0; i < 3; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Stats()
	for i := 0; i < 100; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	after := s.Stats()
	if after.EvalCalls != before.EvalCalls {
		t.Errorf("idle cycles still evaluated: %d -> %d", before.EvalCalls, after.EvalCalls)
	}
	if got := after.SkippedEvals - before.SkippedEvals; got == 0 {
		t.Error("idle cycles recorded no skipped evals")
	}
	if after.Cycles != s.Cycle() {
		t.Errorf("Stats.Cycles = %d, Cycle() = %d", after.Cycles, s.Cycle())
	}
	// Sender, fifo and receiver share no combinational signals (each reads
	// only its own registered state), so every pipeline splits into three
	// partitions.
	if after.Partitions != 6 {
		t.Errorf("Partitions = %d, want 6", after.Partitions)
	}
}

// gatedCounter is a TickSensitive module that counts its Ticks: it watches
// one channel and claims stability, so the scheduler should only tick it on
// cycles with handshake activity (or after an explicit wake).
type gatedCounter struct {
	NullEval
	name  string
	ch    *Channel
	wake  func()
	ticks int
}

func (g *gatedCounter) Name() string             { return g.name }
func (g *gatedCounter) Tick()                    { g.ticks++ }
func (g *gatedCounter) TickWatch() []*Channel    { return []*Channel{g.ch} }
func (g *gatedCounter) TickStable() bool         { return true }
func (g *gatedCounter) BindTickWake(wake func()) { g.wake = wake }

func TestTickGatingSkipsQuietModules(t *testing.T) {
	s := New()
	ch := s.NewChannel("ch", 4)
	snd := NewSender("snd", ch)
	rcv := NewReceiver("rcv", ch)
	cnt := &gatedCounter{name: "cnt", ch: ch}
	s.Register(snd, rcv, cnt)

	// One payload: the transaction starts and fires, then the design idles.
	snd.Push(payload(1))
	for i := 0; i < 50; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	fires := int(ch.Ends())
	if fires != 1 {
		t.Fatalf("channel fired %d times, want 1", fires)
	}
	// The counter ticks on cycle 0 (everything ticks once after Build) and on
	// each cycle with handshake activity on its watched channel: the start
	// and the fire, which here land on the same cycle.
	if cnt.ticks != 2 {
		t.Errorf("gated module ticked %d times over 50 cycles, want 2", cnt.ticks)
	}
	st := s.Stats()
	if st.SkippedTicks == 0 {
		t.Error("no ticks skipped on an idle design")
	}

	// An explicit wake runs exactly one more Tick.
	before := cnt.ticks
	cnt.wake()
	if err := s.Step(); err != nil {
		t.Fatal(err)
	}
	if err := s.Step(); err != nil {
		t.Fatal(err)
	}
	if cnt.ticks != before+1 {
		t.Errorf("ticks after wake = %d, want %d", cnt.ticks, before+1)
	}
}

func TestTickGatingIdleDesignStopsTicking(t *testing.T) {
	s := New()
	senders, _ := buildPipelines(s, 2, 3, false)
	done := func() bool { return senders[0].Idle() && senders[1].Idle() }
	if _, err := s.Run(10000, done); err != nil {
		t.Fatal(err)
	}
	// Let the drained design settle into full sleep, then count skips: with
	// senders, fifos and always-ready receivers all gated, every partition
	// should skip its whole tick scan on every idle cycle.
	for i := 0; i < 3; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Stats()
	const idle = 100
	for i := 0; i < idle; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	after := s.Stats()
	wantSkips := uint64(idle * 6) // 2 pipelines x 3 modules, all asleep
	if got := after.SkippedTicks - before.SkippedTicks; got != wantSkips {
		t.Errorf("idle design skipped %d ticks over %d cycles, want %d", got, idle, wantSkips)
	}
}

func TestTieMergesPartitions(t *testing.T) {
	s := New()
	senders, _ := buildPipelines(s, 3, 1, false)
	if err := s.Build(); err != nil {
		t.Fatal(err)
	}
	// Three modules per pipeline, no shared combinational signals.
	if got := s.Stats().Partitions; got != 9 {
		t.Fatalf("untied design has %d partitions, want 9", got)
	}
	s.Tie(senders[0], senders[2])
	if err := s.Build(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Partitions; got != 8 {
		t.Fatalf("tied design has %d partitions, want 8", got)
	}
}

func TestReadsAllFallbackForcesSinglePartition(t *testing.T) {
	s := New()
	buildPipelines(s, 3, 1, false)
	// nopModule does not implement Sensitive, so it gets the ReadsAll
	// fallback, which must pull the whole design into one partition.
	s.Register(&nopModule{name: "legacy-style"})
	if err := s.Build(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Partitions; got != 1 {
		t.Fatalf("design with a ReadsAll module has %d partitions, want 1", got)
	}
}
