package sim

// Channel is a unidirectional VALID/READY handshake channel between a single
// sender and a single receiver, as described in §2.1 of the Vidi paper
// (Fig 1). The sender drives Valid and Data; the receiver drives Ready. A
// transaction starts in the first cycle Valid is observed high and ends in
// the cycle both Valid and Ready are high.
//
// The simulator latches transaction events at each clock edge; modules read
// them during Tick via Fired, StartedNow and EndedNow.
type Channel struct {
	name  string
	width int

	Valid *Wire
	Ready *Wire
	Data  *Data

	// Latched at the clock edge for the cycle that just completed.
	fired      bool
	startedNow bool
	inFlight   bool

	startCycle uint64 // cycle at which the in-flight transaction started
	endCycle   uint64 // cycle at which the last transaction ended
	starts     uint64 // total transactions started
	ends       uint64 // total transactions completed

	// watchers are the indices of TickSensitive modules to wake when a
	// transaction starts or completes on this channel. Rebuilt by Build.
	watchers []int32
}

// NewChannel creates a handshake channel with a data payload of width bytes.
func (s *Simulator) NewChannel(name string, width int) *Channel {
	ch := &Channel{
		name:  name,
		width: width,
		Valid: s.NewWire(name + ".valid"),
		Ready: s.NewWire(name + ".ready"),
		Data:  s.NewData(name+".data", width),
	}
	s.channels = append(s.channels, ch)
	return ch
}

// Name returns the channel's name.
func (ch *Channel) Name() string { return ch.name }

// SenderSignals returns the signals the sending side drives (Valid, Data),
// for use in Sensitivity declarations.
func (ch *Channel) SenderSignals() []Signal { return []Signal{ch.Valid, ch.Data} }

// ReceiverSignals returns the signal the receiving side drives (Ready).
func (ch *Channel) ReceiverSignals() []Signal { return []Signal{ch.Ready} }

// Signals returns all three of the channel's signals.
func (ch *Channel) Signals() []Signal { return []Signal{ch.Valid, ch.Ready, ch.Data} }

// Width returns the payload width in bytes.
func (ch *Channel) Width() int { return ch.width }

// latch records handshake events at the clock edge. Called by the simulator
// after the combinational fixpoint, before Tick.
func (ch *Channel) latch(cycle uint64) {
	v, r := ch.Valid.Get(), ch.Ready.Get()
	ch.startedNow = v && !ch.inFlight
	ch.fired = v && r
	if ch.startedNow {
		ch.inFlight = true
		ch.startCycle = cycle
		ch.starts++
	}
	if ch.fired {
		ch.inFlight = false
		ch.endCycle = cycle
		ch.ends++
	}
}

// Fired reports whether a transaction completed (Valid && Ready) in the
// cycle that just ended. Valid only during Tick.
func (ch *Channel) Fired() bool { return ch.fired }

// StartedNow reports whether a transaction started (Valid rose while no
// transaction was in flight) in the cycle that just ended. A single-cycle
// transaction has StartedNow and Fired true in the same cycle. Valid only
// during Tick.
func (ch *Channel) StartedNow() bool { return ch.startedNow }

// InFlight reports whether a transaction has started but not yet completed.
func (ch *Channel) InFlight() bool { return ch.inFlight }

// Starts returns the total number of transactions started on this channel.
func (ch *Channel) Starts() uint64 { return ch.starts }

// Ends returns the total number of transactions completed on this channel.
func (ch *Channel) Ends() uint64 { return ch.ends }
