package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// propMod is a no-op module with a scripted sensitivity declaration, for
// property tests over the partitioner.
type propMod struct {
	name string
	sens Sensitivity
}

func (m *propMod) Name() string { return m.name }

// Eval is a no-op; the declaration is scripted, not derived from code.
//
//lint:sensaudit property test scripts Sensitivity from a randomized field
func (m *propMod) Eval() {}

// Tick is a no-op; Sensitivity comes from the randomized field above.
//
//lint:partwrite property test scripts Sensitivity from a randomized field
func (m *propMod) Tick()                    {}
func (m *propMod) Sensitivity() Sensitivity { return m.sens }

// TestPartitioningNeverSplitsTies is the tie-preservation property test:
// across randomized designs — random drive/read edges, a sprinkling of
// ReadsAll modules, random Tie groups — every declared Tie group must land
// inside a single partition, under both the fine and the coarse strategy.
func TestPartitioningNeverSplitsTies(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			for _, coarse := range []bool{false, true} {
				s := New()
				s.SetCoarsePartitions(coarse)

				nm := 4 + rng.Intn(16)
				nw := 2 + rng.Intn(24)
				wires := make([]*Wire, nw)
				for i := range wires {
					wires[i] = s.NewWire(fmt.Sprintf("w%d", i))
				}
				mods := make([]*propMod, nm)
				for i := range mods {
					mods[i] = &propMod{name: fmt.Sprintf("m%d", i)}
					s.Register(mods[i])
				}
				// Each wire gets at most one driver; each module reads a few
				// random wires. One design in five has a ReadsAll module.
				for _, w := range wires {
					if rng.Intn(4) > 0 {
						d := mods[rng.Intn(nm)]
						d.sens.Drives = append(d.sens.Drives, w)
					}
				}
				for _, m := range mods {
					for k := rng.Intn(4); k > 0; k-- {
						m.sens.Reads = append(m.sens.Reads, wires[rng.Intn(nw)])
					}
				}
				if rng.Intn(5) == 0 {
					mods[rng.Intn(nm)].sens = Sensitivity{ReadsAll: true}
				}
				// Random Tie groups over disjoint module sets.
				perm := rng.Perm(nm)
				for len(perm) >= 2 && rng.Intn(2) == 0 {
					n := 2 + rng.Intn(3)
					if n > len(perm) {
						n = len(perm)
					}
					group := make([]Module, n)
					for i := 0; i < n; i++ {
						group[i] = mods[perm[i]]
					}
					perm = perm[n:]
					s.Tie(group...)
				}

				layout, err := s.PartitionLayout()
				if err != nil {
					t.Fatalf("coarse=%v: %v", coarse, err)
				}
				partOf := map[string]int{}
				for pi, names := range layout {
					for _, n := range names {
						partOf[n] = pi
					}
				}
				for gi, group := range s.TieGroups() {
					for _, n := range group[1:] {
						if partOf[n] != partOf[group[0]] {
							t.Fatalf("coarse=%v: tie group %d split: %s in partition %d, %s in %d\nlayout: %v",
								coarse, gi, group[0], partOf[group[0]], n, partOf[n], layout)
						}
					}
				}
			}
		})
	}
}

// horizonCounter is a minimal quiescence-batchable module: it burns a cycle
// budget in Tick, promises the burn is mechanical via TickHorizon, and
// fast-forwards it in SkipTicks.
type horizonCounter struct {
	NullEval
	name  string
	left  int
	fires int
	wake  func()
}

func (m *horizonCounter) Name() string          { return m.name }
func (m *horizonCounter) TickWatch() []*Channel { return nil }
func (m *horizonCounter) TickStable() bool      { return m.left == 0 }
func (m *horizonCounter) BindTickWake(w func()) { m.wake = w }
func (m *horizonCounter) TickHorizon(now uint64) uint64 {
	if m.left <= 1 {
		return now
	}
	return now + uint64(m.left) - 1
}
func (m *horizonCounter) SkipTicks(n uint64) { m.left -= int(n) }
func (m *horizonCounter) Tick() {
	if m.left > 0 {
		m.left--
		if m.left == 0 {
			m.fires++
		}
	}
}

// TestQuiescenceBatchingSkipsCycles checks the time layer end to end on a
// minimal design: a horizon-declaring counter must reach its firing cycle
// with the bulk of the stretch batch-skipped, at exactly the cycle count
// the legacy kernel takes.
func TestQuiescenceBatchingSkipsCycles(t *testing.T) {
	const budget = 10_000
	run := func(legacy bool) (uint64, Stats) {
		s := New()
		s.SetLegacy(legacy)
		m := &horizonCounter{name: "ctr", left: budget}
		s.Register(m)
		cycles, err := s.Run(5*budget, func() bool { return m.fires > 0 })
		if err != nil {
			t.Fatalf("legacy=%v: %v", legacy, err)
		}
		if m.fires != 1 || m.left != 0 {
			t.Fatalf("legacy=%v: fires=%d left=%d", legacy, m.fires, m.left)
		}
		return cycles, s.Stats()
	}
	legCycles, _ := run(true)
	schCycles, st := run(false)
	if schCycles != legCycles {
		t.Fatalf("batched run took %d cycles, legacy %d", schCycles, legCycles)
	}
	if st.BatchedCycles < budget-10 {
		t.Fatalf("batched only %d of ~%d cycles: %v", st.BatchedCycles, budget, st)
	}
}

// TestStatsLegacyReporting pins the shape counters the bench table prints:
// the legacy kernel must always report exactly one partition, one settle
// layer and one worker — including after a SetLegacy flip on a simulator
// that already ran partitioned — so a bench row can never carry a
// misleading worker count.
func TestStatsLegacyReporting(t *testing.T) {
	s := New()
	s.SetWorkers(4)
	a := &propMod{name: "a"}
	b := &propMod{name: "b"}
	s.Register(a, b)
	if err := s.Step(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Partitions != 2 || st.SettleLayers != 1 {
		t.Fatalf("scheduler stats: %+v", st)
	}

	s.SetLegacy(true)
	if err := s.Step(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Partitions != 1 || st.Workers != 1 || st.SettleLayers != 1 {
		t.Fatalf("legacy stats after SetLegacy: %+v", st)
	}
	if st.Cycles != 2 {
		t.Fatalf("cycles not carried across kernel flip: %+v", st)
	}
}
