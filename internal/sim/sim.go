// Package sim implements a deterministic, cycle-accurate synchronous
// hardware simulation kernel. It is the substrate that stands in for the
// AWS F1 FPGA used by the Vidi paper: designs are expressed as Modules
// connected by Wires, Data buses and VALID/READY handshake Channels, and a
// Simulator advances them one clock cycle at a time.
//
// Each cycle has two phases, mirroring an RTL simulator:
//
//  1. Combinational settle: every module's Eval method runs repeatedly until
//     no wire changes value (a delta-cycle fixpoint). Eval must be
//     idempotent: it derives combinational outputs from registered state and
//     from other wires' current values.
//  2. Clock edge: the simulator latches handshake events on every Channel
//     (start and end of transactions) and then calls every module's Tick
//     method, in which modules commit sequential state. During Tick a module
//     may inspect Channel.Fired, Channel.StartedNow and Channel.EndedNow,
//     which reflect the cycle that just completed.
//
// The kernel is fully deterministic: modules are evaluated in registration
// order and all randomness comes from explicitly seeded sources.
package sim

import (
	"errors"
	"fmt"
	"strings"

	"vidi/internal/telemetry"
)

// Module is a hardware block. Eval drives combinational outputs and is run
// to a fixpoint each cycle; Tick commits sequential state at the clock edge.
type Module interface {
	// Name identifies the module in error messages.
	Name() string
	// Eval drives combinational outputs. It may be called several times per
	// cycle and must be idempotent given unchanged inputs.
	Eval()
	// Tick commits sequential state at the clock edge.
	Tick()
}

// Checker is an invariant evaluated after the combinational fixpoint of each
// cycle, before the clock edge. A non-nil return aborts the simulation; it is
// used by protocol checkers.
type Checker interface {
	Name() string
	Check() error
}

// ErrCombLoop is returned when the combinational network does not settle,
// indicating an (illegal) combinational feedback loop.
var ErrCombLoop = errors.New("sim: combinational loop did not settle")

// ErrDeadlock is returned by Run when no channel fires for the configured
// watchdog window while at least one transaction is pending. The error
// returned by Run is a *DeadlockError wrapping this sentinel, so
// errors.Is(err, ErrDeadlock) keeps working while errors.As exposes the
// stuck channels.
var ErrDeadlock = errors.New("sim: deadlock (no handshake progress)")

// StuckChannel names one channel with a transaction in flight when the
// watchdog tripped, and the cycle at which that transaction started.
type StuckChannel struct {
	Name  string
	Since uint64
}

// DeadlockError is the structured watchdog error: it records when progress
// stopped and which channels were holding transactions in flight, giving
// divergence diagnosis a concrete fault site instead of a bare sentinel.
type DeadlockError struct {
	// LastFire is the cycle of the most recent completed handshake.
	LastFire uint64
	// Cycle is the cycle at which the watchdog tripped.
	Cycle uint64
	// Stuck lists the in-flight channels, in channel creation order.
	Stuck []StuckChannel
}

// Error implements error.
func (e *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v: no fire since cycle %d (now %d)", ErrDeadlock, e.LastFire, e.Cycle)
	if len(e.Stuck) > 0 {
		b.WriteString("; in flight:")
		for i, s := range e.Stuck {
			if i > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, " %s (since cycle %d)", s.Name, s.Since)
		}
	}
	return b.String()
}

// Unwrap keeps errors.Is(err, ErrDeadlock) working.
func (e *DeadlockError) Unwrap() error { return ErrDeadlock }

// Simulator owns the clock, all wires, channels and modules of a design.
type Simulator struct {
	modules  []Module
	wires    []*Wire
	datas    []*Data
	channels []*Channel
	checkers []Checker

	cycle    uint64
	maxIters int

	// legacyChanged is the legacy kernel's global fixpoint flag.
	legacyChanged bool
	// legacy selects the seed fixpoint kernel instead of the sensitivity
	// scheduler; see SetLegacy.
	legacy bool

	// Sensitivity-graph schedule, compiled lazily by Build.
	built   bool
	sched   *scheduler
	ties    [][]Module
	workers int
	// coarse selects read-edge unioning (the pre-sub-partitioning strategy);
	// see SetCoarsePartitions.
	coarse bool
	// perturbSeed, when non-zero, arms seeded yield injection in the
	// parallel worker loop; see SetSchedulePerturb.
	perturbSeed uint64
	stats       Stats

	// Struct-of-arrays signal state, rebuilt by Build: per-partition regions
	// of wire values, generation counters, and data-bus bytes, padded so
	// parallel partitions never share a cache line. Wires and Datas are thin
	// handles pointing into these slabs; the fields only anchor the current
	// slabs against the garbage collector.
	slabBools []bool
	slabGens  []uint64
	slabArena []byte

	// tel, when non-nil, is bound to the schedule at Build time; see
	// SetTelemetry.
	tel *telemetry.Sink

	// Dynamic sensitivity checker (SetSensitivityCheck): probe is non-nil
	// while a schedule built with checking is live.
	sensCheck bool
	probe     *sensProbe

	// Watchdog state: cycle of the most recent channel fire, and a running
	// count of in-flight transactions (maintained at the latch phase).
	lastFire    uint64
	inFlightCnt int
	// WatchdogWindow is the number of consecutive cycles without any
	// handshake completing after which Run reports ErrDeadlock while a
	// transaction is in flight. Zero disables the watchdog.
	WatchdogWindow uint64
}

// New returns an empty simulator.
func New() *Simulator {
	return &Simulator{maxIters: 64, WatchdogWindow: 100000}
}

// Cycle reports the number of completed clock cycles.
func (s *Simulator) Cycle() uint64 { return s.cycle }

// Register adds modules to the simulator. Modules are evaluated and ticked
// in registration order.
func (s *Simulator) Register(ms ...Module) {
	s.modules = append(s.modules, ms...)
	s.invalidate()
}

// AddChecker installs a per-cycle invariant checker.
func (s *Simulator) AddChecker(cs ...Checker) {
	s.checkers = append(s.checkers, cs...)
}

// Step advances the simulation by one clock cycle.
func (s *Simulator) Step() error {
	if !s.built {
		if err := s.Build(); err != nil {
			return err
		}
	}
	// Phase 1: combinational settle.
	if s.sched != nil {
		if err := s.sched.settle(s.cycle, s.maxIters); err != nil {
			return err
		}
	} else if err := s.settleLegacy(); err != nil {
		return err
	}
	// Invariant checks see the settled network.
	for _, c := range s.checkers {
		if err := c.Check(); err != nil {
			return fmt.Errorf("sim: cycle %d: checker %s: %w", s.cycle, c.Name(), err)
		}
	}
	// Phase 2: clock edge. Latch handshake events in channel creation
	// order (always sequential — this is the fixed global order parallel
	// partitions synchronise on), then tick modules. Handshake activity
	// wakes the channel's gated watchers for this cycle's tick phase.
	anyFire := false
	for _, ch := range s.channels {
		ch.latch(s.cycle)
		if ch.startedNow {
			s.inFlightCnt++
		}
		if ch.fired {
			anyFire = true
			s.inFlightCnt--
		}
		if (ch.fired || ch.startedNow) && s.sched != nil {
			for _, mi := range ch.watchers {
				ms := &s.sched.mods[mi]
				if !ms.needsTick {
					ms.needsTick = true
					s.sched.parts[ms.part].awake++
				}
			}
		}
	}
	if anyFire {
		s.lastFire = s.cycle
	}
	if s.sched != nil {
		s.sched.tick()
	} else {
		for _, m := range s.modules {
			m.Tick()
		}
	}
	s.cycle++
	return nil
}

// settleLegacy is the seed kernel's combinational phase: run every module's
// Eval in registration order until no signal changes.
func (s *Simulator) settleLegacy() error {
	for iter := 0; ; iter++ {
		s.legacyChanged = false
		for _, m := range s.modules {
			m.Eval()
		}
		s.stats.EvalCalls += uint64(len(s.modules))
		s.stats.SettleWaves++
		if !s.legacyChanged {
			return nil
		}
		if iter >= s.maxIters {
			return fmt.Errorf("%w at cycle %d", ErrCombLoop, s.cycle)
		}
	}
}

// Run steps the simulation until done returns true, the watchdog trips, or
// maxCycles elapse. It returns the number of cycles executed by this call.
//
// Run — and only Run — applies quiescence cycle-batching: after a Step that
// leaves the network provably frozen (see scheduler.quiesce), the clock
// jumps over the dead stretch instead of stepping through it. Step keeps its
// advance-exactly-one-cycle contract, so manual-stepping tests and callers
// are never batched. Skipped cycles are externally invisible: no signal
// changes, so traces and VCD output are byte-identical, checker verdicts and
// the done predicate are constant, and the skip is capped so the watchdog
// still trips — and maxCycles still expires — at exactly the cycle it would
// have unbatched.
func (s *Simulator) Run(maxCycles uint64, done func() bool) (uint64, error) {
	start := s.cycle
	for s.cycle-start < maxCycles {
		if done != nil && done() {
			return s.cycle - start, nil
		}
		if err := s.Step(); err != nil {
			return s.cycle - start, err
		}
		if s.WatchdogWindow > 0 && s.anyInFlight() && s.cycle-s.lastFire > s.WatchdogWindow {
			return s.cycle - start, s.deadlockError()
		}
		// The done re-check matters: this Step may just have finished the
		// run, and batching past that point would inflate the cycle count the
		// caller observes. For a still-unfinished frozen network, done stays
		// false across the whole skipped stretch (it is a pure function of
		// module and channel state, which cannot change while frozen).
		if s.sched != nil && s.sched.batchable && !(done != nil && done()) {
			limit := maxCycles - (s.cycle - start)
			if s.WatchdogWindow > 0 && s.anyInFlight() {
				// Leave enough real Steps for the watchdog to trip at the
				// same cycle as an unbatched run would.
				wd := s.lastFire + s.WatchdogWindow
				if wd <= s.cycle {
					limit = 0
				} else if wd-s.cycle < limit {
					limit = wd - s.cycle
				}
			}
			if k := s.sched.quiesce(s.cycle, limit); k > 0 {
				s.cycle += k
			}
		}
	}
	if done != nil && done() {
		return s.cycle - start, nil
	}
	return s.cycle - start, fmt.Errorf("sim: run did not finish within %d cycles", maxCycles)
}

func (s *Simulator) anyInFlight() bool { return s.inFlightCnt > 0 }

// deadlockError builds the structured watchdog error from the in-flight
// channels.
func (s *Simulator) deadlockError() *DeadlockError {
	e := &DeadlockError{LastFire: s.lastFire, Cycle: s.cycle}
	for _, ch := range s.channels {
		if ch.inFlight {
			e.Stuck = append(e.Stuck, StuckChannel{Name: ch.name, Since: ch.startCycle})
		}
	}
	return e
}

// Channels returns all channels created on this simulator, in creation order.
func (s *Simulator) Channels() []*Channel { return s.channels }
