package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestDuplicateNamePropertyAllNamespaces checks the full contract of Build's
// name checking, uniformly across every namespace: for any colliding name the
// error is a *DuplicateNameError wrapping ErrDuplicateName, its Kind/Name
// identify the namespace and the colliding entity, and the rendered message
// names both — so a user reading only the error string can find the clash.
// Decoy entities with unique names must never trip the check.
func TestDuplicateNamePropertyAllNamespaces(t *testing.T) {
	namespaces := []struct {
		kind string
		add  func(s *Simulator, name string)
	}{
		{"module", func(s *Simulator, name string) { s.Register(&nopModule{name: name}) }},
		{"wire", func(s *Simulator, name string) { s.NewWire(name) }},
		{"data", func(s *Simulator, name string) { s.NewData(name, 16) }},
		{"channel", func(s *Simulator, name string) { s.NewChannel(name, 4) }},
	}
	names := []string{"x", "top.u0", "a b", "日本", "with\"quote", strings.Repeat("n", 100)}

	for _, ns := range namespaces {
		ns := ns
		t.Run(ns.kind, func(t *testing.T) {
			for _, name := range names {
				s := New()
				// Unique decoys in the same namespace must not collide.
				for i := 0; i < 3; i++ {
					ns.add(s, fmt.Sprintf("%s.decoy%d", name, i))
				}
				ns.add(s, name)
				ns.add(s, name)

				err := s.Build()
				if err == nil {
					t.Fatalf("%s: Build accepted duplicate name %q", ns.kind, name)
				}
				if !errors.Is(err, ErrDuplicateName) {
					t.Fatalf("%s/%q: err = %v, want ErrDuplicateName", ns.kind, name, err)
				}
				var dn *DuplicateNameError
				if !errors.As(err, &dn) {
					t.Fatalf("%s/%q: err = %T, want *DuplicateNameError", ns.kind, name, err)
				}
				if dn.Kind != ns.kind {
					t.Errorf("%s/%q: Kind = %q", ns.kind, name, dn.Kind)
				}
				if dn.Name != name {
					t.Errorf("%s/%q: Name = %q", ns.kind, name, dn.Name)
				}
				// The message renders the name with %q, so match the quoted form.
				if msg := err.Error(); !strings.Contains(msg, fmt.Sprintf("%q", name)) || !strings.Contains(msg, ns.kind) {
					t.Errorf("%s/%q: message %q does not name the colliding entity", ns.kind, name, msg)
				}
			}
		})
	}
}

// TestDuplicateNameAcrossNamespacesAllowed pins the complementary property:
// the namespaces are independent, so the same name in different namespaces is
// legal and Build succeeds.
func TestDuplicateNameAcrossNamespacesAllowed(t *testing.T) {
	s := New()
	s.Register(&nopModule{name: "shared"})
	s.NewWire("shared")
	s.NewData("shared", 8)
	s.NewChannel("shared", 4)
	if err := s.Build(); err != nil {
		t.Fatalf("same name across namespaces must be legal: %v", err)
	}
}
