package sim

import "math/rand"

// Sender drives a channel from a queue of payloads. It is a Moore machine:
// Valid and Data are functions of registered state only, so once a payload is
// offered it stays stable until the handshake completes, as the protocol
// requires.
type Sender struct {
	EvalTracker
	name  string
	ch    *Channel
	queue [][]byte

	active bool
	cur    []byte

	// Gap, if non-nil, returns the number of idle cycles to insert before
	// offering the next payload. It models sender-side timing jitter.
	Gap func() int
	gap int

	tickWake func()
}

// NewSender creates a sender for ch. Payloads are offered in Push order.
func NewSender(name string, ch *Channel) *Sender {
	return &Sender{name: name, ch: ch}
}

// Name implements Module.
func (s *Sender) Name() string { return s.name }

// Push enqueues a payload for transmission. b is copied.
func (s *Sender) Push(b []byte) {
	c := make([]byte, len(b))
	copy(c, b)
	s.queue = append(s.queue, c)
	if s.tickWake != nil {
		s.tickWake()
	}
}

// BindTickWake implements TickWakeable; Push wakes a sleeping sender.
func (s *Sender) BindTickWake(wake func()) { s.tickWake = wake }

// TickWatch implements TickSensitive.
func (s *Sender) TickWatch() []*Channel { return []*Channel{s.ch} }

// TickStable implements TickSensitive: an in-flight offer only needs a Tick
// when its channel fires; a drained sender only when Push wakes it. A gap
// countdown or queued payload keeps it awake.
func (s *Sender) TickStable() bool {
	return (s.active || len(s.queue) == 0) && s.gap == 0
}

// Pending reports the number of payloads not yet offered.
func (s *Sender) Pending() int { return len(s.queue) }

// Idle reports whether the sender has nothing queued or in flight.
func (s *Sender) Idle() bool { return !s.active && len(s.queue) == 0 }

// Eval implements Module.
func (s *Sender) Eval() {
	s.ch.Valid.Set(s.active)
	if s.active {
		s.ch.Data.Set(s.cur)
	}
}

// Sensitivity implements Sensitive: outputs are a function of registered
// state only.
func (s *Sender) Sensitivity() Sensitivity {
	return Sensitivity{Drives: s.ch.SenderSignals()}
}

// Tick implements Module.
func (s *Sender) Tick() {
	if s.active && s.ch.Fired() {
		s.active = false
		s.Touch()
		if s.Gap != nil {
			s.gap = s.Gap()
		}
	}
	if !s.active {
		if s.gap > 0 {
			s.gap--
			return
		}
		if len(s.queue) > 0 {
			s.cur = s.queue[0]
			s.queue = s.queue[1:]
			s.active = true
			s.Touch()
		}
	}
}

// Receiver accepts transactions on a channel and records the received
// payloads. Readiness is registered (decided at the previous clock edge) and
// controlled by the Policy function, which models receiver-side jitter.
type Receiver struct {
	EvalTracker
	name string
	ch   *Channel

	// Policy reports whether the receiver will be ready in the next cycle.
	// A nil policy is always ready.
	Policy func() bool

	ready    bool
	Received [][]byte
}

// NewReceiver creates an always-ready receiver for ch.
func NewReceiver(name string, ch *Channel) *Receiver {
	return &Receiver{name: name, ch: ch, ready: true}
}

// Name implements Module.
func (r *Receiver) Name() string { return r.name }

// Eval implements Module.
func (r *Receiver) Eval() { r.ch.Ready.Set(r.ready) }

// Sensitivity implements Sensitive.
func (r *Receiver) Sensitivity() Sensitivity {
	return Sensitivity{Drives: r.ch.ReceiverSignals()}
}

// TickWatch implements TickSensitive.
func (r *Receiver) TickWatch() []*Channel { return []*Channel{r.ch} }

// TickStable implements TickSensitive: a jittered receiver draws from its
// policy's random source every cycle, so it must never sleep (gating it
// would change the stream); an always-ready receiver only reacts to fires.
// A receiver left not-ready (by a policy later removed) stays awake until
// it has re-asserted readiness.
func (r *Receiver) TickStable() bool { return r.Policy == nil && r.ready }

// Tick implements Module.
func (r *Receiver) Tick() {
	if r.ch.Fired() {
		r.Received = append(r.Received, r.ch.Data.Snapshot())
	}
	next := true
	if r.Policy != nil {
		next = r.Policy()
	}
	if next != r.ready {
		r.ready = next
		r.Touch()
	}
}

// Fifo is a depth-bounded queue between an input and an output channel. It
// acts as the receiver of in and the sender of out.
type Fifo struct {
	EvalTracker
	name   string
	in     *Channel
	out    *Channel
	depth  int
	buf    [][]byte
	maxLen int
}

// NewFifo creates a FIFO of the given depth connecting in to out.
func NewFifo(name string, in, out *Channel, depth int) *Fifo {
	return &Fifo{name: name, in: in, out: out, depth: depth}
}

// Name implements Module.
func (f *Fifo) Name() string { return f.name }

// Len reports the current occupancy.
func (f *Fifo) Len() int { return len(f.buf) }

// Cap reports the configured depth.
func (f *Fifo) Cap() int { return f.depth }

// MaxLen reports the high-water occupancy observed so far (including
// preloaded tokens) — the basis of occupancy histograms in coverage
// feedback.
func (f *Fifo) MaxLen() int { return f.maxLen }

// Preload appends an initial token before the run starts, seeding feedback
// loops with their initial population. b is copied. Preloading beyond the
// configured depth panics: that design could never exist in hardware.
func (f *Fifo) Preload(b []byte) {
	if len(f.buf) >= f.depth {
		panic("sim: Fifo.Preload beyond capacity of " + f.name)
	}
	c := make([]byte, len(b))
	copy(c, b)
	f.buf = append(f.buf, c)
	if len(f.buf) > f.maxLen {
		f.maxLen = len(f.buf)
	}
}

// Eval implements Module.
func (f *Fifo) Eval() {
	f.in.Ready.Set(len(f.buf) < f.depth)
	f.out.Valid.Set(len(f.buf) > 0)
	if len(f.buf) > 0 {
		f.out.Data.Set(f.buf[0])
	}
}

// Sensitivity implements Sensitive.
func (f *Fifo) Sensitivity() Sensitivity {
	return Sensitivity{Drives: []Signal{f.in.Ready, f.out.Valid, f.out.Data}}
}

// TickWatch implements TickSensitive.
func (f *Fifo) TickWatch() []*Channel { return []*Channel{f.in, f.out} }

// TickStable implements TickSensitive: the FIFO's Tick acts only on
// handshake events of its two channels.
func (f *Fifo) TickStable() bool { return true }

// Tick implements Module.
func (f *Fifo) Tick() {
	if f.out.Fired() {
		f.buf = f.buf[1:]
		f.Touch()
	}
	if f.in.Fired() {
		f.buf = append(f.buf, f.in.Data.Snapshot())
		if len(f.buf) > f.maxLen {
			f.maxLen = len(f.buf)
		}
		f.Touch()
	}
}

// NewRand returns a deterministic pseudo-random source. All timing jitter in
// the simulated environment flows from explicitly seeded sources so that
// recorded executions can be reproduced exactly when desired and perturbed
// when modelling real-world non-determinism.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// JitterPolicy returns a readiness policy that is ready with probability
// p (in percent) each cycle, driven by rng.
func JitterPolicy(rng *rand.Rand, p int) func() bool {
	return func() bool { return rng.Intn(100) < p }
}

// GapPolicy returns a sender gap function producing uniform gaps in [min,max].
func GapPolicy(rng *rand.Rand, min, max int) func() int {
	if max < min {
		max = min
	}
	return func() int { return min + rng.Intn(max-min+1) }
}
