package fuzz

import "vidi/internal/design"

// Shrink greedily reduces a failing scenario to a minimal reproducer. Each
// round proposes candidate reductions — drop a pipeline stage, halve or
// decrement the frame count, drop noise ops, zero the jitter, remove faults,
// shorten the start delay, disable degraded recording, drop or structurally
// reduce the embedded dataflow graph (via design.Reductions), disarm a
// planted compiler bug — and keeps a
// candidate only if the harness still fails with the SAME failure kind
// (a reduction that merely fails differently is a different bug and is
// rejected). Rounds repeat until a fixpoint. Returns the shrunk scenario
// and the number of harness runs spent.
//
// check lets tests substitute a cheaper verdict function; nil uses RunSeed.
func Shrink(sc *Scenario, kind FailureKind, check func(*Scenario) *Outcome) (*Scenario, int) {
	if check == nil {
		check = RunSeed
	}
	best := sc.clone()
	runs := 0
	for {
		improved := false
		for _, cand := range candidates(best) {
			if !smaller(cand, best) {
				continue
			}
			if cand.Validate() != nil {
				continue
			}
			runs++
			out := check(cand)
			if out.Failure != nil && out.Failure.Kind == kind {
				best = cand
				improved = true
				break // restart candidate generation from the smaller base
			}
		}
		if !improved {
			return best, runs
		}
	}
}

// smaller orders scenarios by (Size, timing weight) lexicographically: the
// primary shrink metric is structural, but among equal-size scenarios one
// with less delay/jitter/depth is still the simpler reproducer, and both
// metrics strictly decrease so the greedy loop terminates.
func smaller(a, b *Scenario) bool {
	if a.Size() != b.Size() {
		return a.Size() < b.Size()
	}
	return weight(a) < weight(b)
}

func weight(sc *Scenario) int {
	w := sc.StartDelay + sc.JitterMax + sc.Frames
	for _, d := range sc.Stages {
		w += d
	}
	if sc.Graph != nil {
		w += sc.Graph.Stats().Weight
	}
	return w
}

// candidates proposes one-step reductions of sc, most aggressive first so
// the greedy loop takes big steps while they work.
func candidates(sc *Scenario) []*Scenario {
	var out []*Scenario
	mod := func(f func(*Scenario)) {
		c := sc.clone()
		f(c)
		out = append(out, c)
	}

	// Big structural cuts first.
	if sc.Graph != nil {
		mod(func(c *Scenario) { c.Graph = nil; c.BugLoopInit = false; c.BugJoinOrder = false })
	}
	if len(sc.Stages) > 0 {
		mod(func(c *Scenario) { c.Stages = nil })
	}
	if len(sc.Noise) > 0 {
		mod(func(c *Scenario) { c.Noise = nil })
	}
	if sc.Frames > 2 {
		mod(func(c *Scenario) { c.Frames = c.Frames / 2 })
	}
	// Graph-aware cuts: the design package proposes strictly smaller valid
	// sub-graphs (drop a pipe stage, collapse a fork, unroll a loop, …).
	if sc.Graph != nil {
		for _, red := range design.Reductions(sc.Graph) {
			red := red
			mod(func(c *Scenario) {
				c.Graph = red
				st := red.Stats()
				if st.Loops == 0 {
					c.BugLoopInit = false
				}
				if st.Forks == 0 {
					c.BugJoinOrder = false
				}
			})
		}
	}
	// Then one-element cuts.
	for i := range sc.Stages {
		i := i
		mod(func(c *Scenario) { c.Stages = append(c.Stages[:i], c.Stages[i+1:]...) })
	}
	for i := range sc.Noise {
		i := i
		mod(func(c *Scenario) { c.Noise = append(c.Noise[:i], c.Noise[i+1:]...) })
	}
	if sc.Frames > 1 {
		mod(func(c *Scenario) { c.Frames-- })
	}
	// Feature flags and timing.
	if len(sc.Faults) > 0 {
		mod(func(c *Scenario) { c.Faults = nil })
	}
	if sc.Degraded {
		mod(func(c *Scenario) { c.Degraded = false; c.BufBytes = 0 })
	}
	if sc.JitterMax > 0 {
		mod(func(c *Scenario) { c.JitterMax = 0 })
	}
	if sc.StartDelay > 0 {
		mod(func(c *Scenario) { c.StartDelay = 0 })
		if sc.StartDelay > 50 {
			mod(func(c *Scenario) { c.StartDelay = c.StartDelay / 2 })
		}
	}
	if sc.MutateProbe {
		mod(func(c *Scenario) { c.MutateProbe = false })
	}
	if sc.Filter != "" {
		mod(func(c *Scenario) { c.Filter = "" })
		if sc.Filter == "buggy" {
			mod(func(c *Scenario) { c.Filter = "fixed" })
		}
	}
	if sc.FIFOBuggy {
		mod(func(c *Scenario) { c.FIFOBuggy = false })
	}
	if sc.BugLoopInit {
		mod(func(c *Scenario) { c.BugLoopInit = false })
	}
	if sc.BugJoinOrder {
		mod(func(c *Scenario) { c.BugJoinOrder = false })
	}
	return out
}
