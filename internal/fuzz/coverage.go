package fuzz

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"math/rand"

	"vidi/internal/design"
	"vidi/internal/sim"
	"vidi/internal/telemetry"
)

// CoverageVector quantizes one clean run's observable behavior into a small
// discrete feature vector: scheduler-shape gauges and activity counters from
// the record leg's telemetry snapshot (log2- and decile-bucketed so noise
// does not manufacture novelty), the compiled graph's FIFO occupancy
// quartiles, and the scenario's topology-class counts. Two runs with equal
// vectors exercised the simulator the same way; the guided search keeps one
// scenario per distinct vector as its frontier.
type CoverageVector struct {
	// Partitions/Layers are the sensitivity-graph shape gauges.
	Partitions int `json:"partitions"`
	Layers     int `json:"layers"`
	// CycleBucket/WaveBucket/EvalBucket are log2 buckets of the record run's
	// cycle count, settle waves and Eval invocations.
	CycleBucket int `json:"cycle_bucket"`
	WaveBucket  int `json:"wave_bucket"`
	EvalBucket  int `json:"eval_bucket"`
	// SkipDecile is the scheduler's eval-skip ratio in deciles (skipped
	// relative to legacy's skipped+ran); BatchDecile likewise for cycles
	// skipped wholesale by quiescence batching.
	SkipDecile  int `json:"skip_decile"`
	BatchDecile int `json:"batch_decile"`
	// Occupancy histograms the compiled graph's FIFO high-water marks by
	// capacity quartile, each count saturating at 3.
	Occupancy [4]int `json:"occupancy"`
	// Topology-class counts of the scenario's graph, each saturating at 3.
	Loops     int `json:"loops"`
	Forks     int `json:"forks"`
	Deals     int `json:"deals"`
	ClockDivs int `json:"clock_divs"`
	VarLat    int `json:"var_lat"`
	// GraphDepth is the graph's nesting depth (0 = graph-free).
	GraphDepth int `json:"graph_depth"`
	// Degraded/Faulted mark the recording mode and fault-plan presence.
	Degraded bool `json:"degraded,omitempty"`
	Faulted  bool `json:"faulted,omitempty"`
}

// Key is the frontier identity: two vectors with the same key are the same
// behavior class.
func (v CoverageVector) Key() string {
	b, err := json.Marshal(v)
	if err != nil { // fixed struct of ints/bools: cannot fail
		panic(fmt.Sprintf("fuzz: coverage vector marshal: %v", err))
	}
	return string(b)
}

// log2Bucket buckets a non-negative count by bit length: 0→0, 1→1, 2..3→2,
// 4..7→3, …
func log2Bucket(v float64) int {
	if v < 1 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// decile buckets part/whole into 0..10.
func decile(part, whole float64) int {
	if whole <= 0 {
		return 0
	}
	d := int(10 * part / whole)
	if d > 10 {
		d = 10
	}
	return d
}

// sat3 saturates a count at 3 so raw magnitudes do not explode the vector
// space.
func sat3(n int) int {
	if n > 3 {
		return 3
	}
	return n
}

// coverageOf derives the vector for one scheduler-kernel record leg.
func coverageOf(sc *Scenario, res *runResult, snap *telemetry.Snapshot) CoverageVector {
	evals := snap.Total("vidi_sched_evals_total")
	skipped := snap.Total("vidi_sched_skipped_evals_total")
	cycles := snap.Total("vidi_sched_cycles")
	v := CoverageVector{
		Partitions:  int(snap.Total("vidi_sched_partitions")),
		Layers:      int(snap.Total("vidi_sched_layers")),
		CycleBucket: log2Bucket(cycles),
		WaveBucket:  log2Bucket(snap.Total("vidi_sched_waves_total")),
		EvalBucket:  log2Bucket(evals),
		SkipDecile:  decile(skipped, evals+skipped),
		BatchDecile: decile(snap.Total("vidi_sched_batched_cycles_total"), cycles),
		Degraded:    sc.Degraded,
		Faulted:     len(sc.Faults) > 0,
	}
	if res.design != nil && res.design.inst != nil {
		h := res.design.inst.OccupancyHist()
		for i, n := range h {
			v.Occupancy[i] = sat3(n)
		}
	}
	if sc.Graph != nil {
		st := sc.Graph.Stats()
		v.Loops = sat3(st.Loops)
		v.Forks = sat3(st.Forks)
		v.Deals = sat3(st.Deals)
		v.ClockDivs = sat3(st.ClockDivs)
		v.VarLat = sat3(st.VarLat)
		v.GraphDepth = st.Depth
	}
	return v
}

// RunSeedCoverage is RunSeed plus coverage extraction: it attaches a
// telemetry sink to the scheduler-kernel record leg and derives the run's
// CoverageVector. The vector is nil when the scenario failed validation
// (no run to measure).
func RunSeedCoverage(sc *Scenario) (*Outcome, *CoverageVector) {
	tel := telemetry.New()
	out, rec := runOracles(sc, tel)
	if rec == nil {
		return out, nil
	}
	v := coverageOf(sc, rec, tel.Gather())
	return out, &v
}

// FrontierEntry pairs a scenario with the novel vector it produced.
type FrontierEntry struct {
	Scenario *Scenario      `json:"scenario"`
	Vector   CoverageVector `json:"vector"`
}

// Frontier is the guided search's working set: one representative scenario
// per distinct coverage vector, in discovery order.
type Frontier struct {
	seen    map[string]int
	entries []*FrontierEntry
}

// NewFrontier returns an empty frontier.
func NewFrontier() *Frontier { return &Frontier{seen: map[string]int{}} }

// Add records sc under its vector and reports whether the vector was novel.
func (f *Frontier) Add(sc *Scenario, v CoverageVector) bool {
	key := v.Key()
	if _, ok := f.seen[key]; ok {
		return false
	}
	f.seen[key] = len(f.entries)
	f.entries = append(f.entries, &FrontierEntry{Scenario: sc, Vector: v})
	return true
}

// Len is the number of distinct vectors discovered.
func (f *Frontier) Len() int { return len(f.entries) }

// Entries returns the frontier in discovery order.
func (f *Frontier) Entries() []*FrontierEntry { return f.entries }

// Pick returns a uniformly random frontier scenario, or nil when empty.
func (f *Frontier) Pick(rng *rand.Rand) *Scenario {
	if len(f.entries) == 0 {
		return nil
	}
	return f.entries[rng.Intn(len(f.entries))].Scenario
}

// MutateScenario derives a new valid scenario from sc: one structural or
// workload mutation (graph mutation via design.Mutate, graph attach/detach,
// frame/stage/rate/timing tweaks), with the payload seed freely re-rolled.
// Bug knobs are never introduced — guided search runs in clean mode.
func MutateScenario(rng *rand.Rand, sc *Scenario, opt GenOptions) *Scenario {
	ropt := design.RandOptions{MaxNodes: opt.MaxGraphNodes, MaxDepth: opt.MaxGraphDepth}
	for attempt := 0; attempt < 8; attempt++ {
		c := sc.clone()
		switch rng.Intn(10) {
		case 0, 1, 2: // graph mutation dominates: it is the coverage driver
			if c.Graph != nil {
				c.Graph = design.Mutate(rng, c.Graph, ropt)
			} else {
				c.Graph = design.Random(rng, ropt)
			}
		case 3:
			c.Graph, c.BugLoopInit, c.BugJoinOrder = nil, false, false
		case 4:
			c.Frames = 2 + rng.Intn(opt.MaxFrames-1)
			if lim := c.Frames * 16; c.FIFOFrags > lim {
				c.FIFOFrags = lim
			}
		case 5:
			c.Stages = nil
			for i, n := 0, rng.Intn(opt.MaxStages+1); i < n; i++ {
				c.Stages = append(c.Stages, 1+rng.Intn(8))
			}
		case 6:
			c.DrainRate = 1 + rng.Intn(16)
		case 7:
			c.StartDelay = rng.Intn(600)
			c.JitterMax = rng.Intn(9)
		case 8:
			c.Degraded = !c.Degraded
			if c.Degraded && c.BufBytes == 0 {
				c.BufBytes = 2048
			}
			if !c.Degraded {
				// Brownout recording only survives degraded; drop the fault
				// with the mode.
				c.Faults, c.BufBytes = nil, 0
			}
		case 9:
			c.MutateProbe = !c.MutateProbe
		}
		c.Seed = rng.Int63()
		if c.Validate() == nil {
			return c
		}
	}
	return sc.clone()
}

// TopologyStats counts, across a guided run's scenarios, how many exercised
// each of the five graph topology classes (plus the graph-free baseline).
type TopologyStats struct {
	Scenarios int `json:"scenarios"`
	Graphless int `json:"graphless"`
	Loops     int `json:"loops"`
	Forks     int `json:"forks"`
	Deals     int `json:"deals"`
	ClockDivs int `json:"clock_divs"`
	VarLat    int `json:"var_lat"`
}

func (t *TopologyStats) observe(sc *Scenario) {
	t.Scenarios++
	if sc.Graph == nil {
		t.Graphless++
		return
	}
	st := sc.Graph.Stats()
	if st.Loops > 0 {
		t.Loops++
	}
	if st.Forks > 0 {
		t.Forks++
	}
	if st.Deals > 0 {
		t.Deals++
	}
	if st.ClockDivs > 0 {
		t.ClockDivs++
	}
	if st.VarLat > 0 {
		t.VarLat++
	}
}

// Missing names the topology classes a guided run never exercised.
func (t *TopologyStats) Missing() []string {
	var m []string
	for _, c := range []struct {
		name string
		n    int
	}{
		{"fork", t.Forks}, {"deal", t.Deals}, {"loop", t.Loops},
		{"clockdiv", t.ClockDivs}, {"varlat", t.VarLat},
	} {
		if c.n == 0 {
			m = append(m, c.name)
		}
	}
	return m
}

// GuidedConfig parameterizes RunGuided.
type GuidedConfig struct {
	// Runs is the total number of scenarios to execute.
	Runs int
	// SeedBase seeds both the fresh-scenario stream and the mutation source,
	// making the whole search deterministic.
	SeedBase int64
	// Gen bounds generation and mutation.
	Gen GenOptions
	// Progress, when non-nil, receives one line per run.
	Progress func(format string, args ...any)
}

// GuidedReport is a guided run's result: the frontier of distinct coverage
// vectors, its growth curve, and the topology classes exercised.
type GuidedReport struct {
	Runs       int              `json:"runs"`
	Fresh      int              `json:"fresh"`
	Mutated    int              `json:"mutated"`
	Failing    int              `json:"failing"`
	NewVectors int              `json:"new_vectors"`
	Growth     []int            `json:"growth"`
	Topology   TopologyStats    `json:"topology"`
	Failures   []string         `json:"failures,omitempty"`
	Frontier   *Frontier        `json:"-"`
	Vectors    []CoverageVector `json:"vectors"`
}

// RunGuided performs coverage-guided search: every fourth run executes a
// fresh generator seed, the rest mutate a random frontier scenario; a run
// whose coverage vector is novel joins the frontier. All runs go through the
// full five-oracle stack, so the search doubles as a conformance sweep —
// failures are reported, never added to the frontier.
func RunGuided(cfg GuidedConfig) (*GuidedReport, error) {
	if err := cfg.Gen.validate(); err != nil {
		return nil, err
	}
	rng := sim.NewRand(cfg.SeedBase ^ 0x6e1d)
	fr := NewFrontier()
	rep := &GuidedReport{Frontier: fr}
	nextSeed := cfg.SeedBase
	for i := 0; i < cfg.Runs; i++ {
		var sc *Scenario
		var origin string
		if fr.Len() == 0 || i%4 == 0 {
			sc, _ = Generate(nextSeed, cfg.Gen) // cfg.Gen validated above
			origin = fmt.Sprintf("seed %d", nextSeed)
			nextSeed++
			rep.Fresh++
		} else {
			sc = MutateScenario(rng, fr.Pick(rng), cfg.Gen)
			origin = "mutation"
			rep.Mutated++
		}
		out, vec := RunSeedCoverage(sc)
		rep.Runs++
		rep.Topology.observe(sc)
		novel := false
		if out.Failure != nil {
			rep.Failing++
			rep.Failures = append(rep.Failures, fmt.Sprintf("%s: %v", origin, out.Failure))
		} else if vec != nil && fr.Add(sc, *vec) {
			rep.NewVectors++
			novel = true
		}
		rep.Growth = append(rep.Growth, fr.Len())
		if cfg.Progress != nil {
			verdict := "ok"
			if out.Failure != nil {
				verdict = "FAIL " + string(out.Failure.Kind)
			} else if novel {
				verdict = "NEW"
			}
			cfg.Progress("run %-4d %-12s %-4s frontier %d", i, origin, verdict, fr.Len())
		}
	}
	for _, e := range fr.Entries() {
		rep.Vectors = append(rep.Vectors, e.Vector)
	}
	return rep, nil
}
