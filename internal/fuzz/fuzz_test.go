package fuzz

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
)

// genOpt is the test-side generator configuration: the vidi-fuzz defaults
// with bug injection toggled.
func genOpt(bugs bool) GenOptions {
	opt := DefaultGenOptions()
	opt.InjectBugs = bugs
	return opt
}

// mustGen generates a scenario or fails the test.
func mustGen(t *testing.T, seed int64, opt GenOptions) *Scenario {
	t.Helper()
	sc, err := Generate(seed, opt)
	if err != nil {
		t.Fatalf("seed %d: Generate: %v", seed, err)
	}
	return sc
}

func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a := mustGen(t, seed, genOpt(seed%2 == 0))
		b := mustGen(t, seed, genOpt(seed%2 == 0))
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: generator not deterministic:\n%+v\n%+v", seed, a, b)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid scenario: %v", seed, err)
		}
	}
}

func TestGenerateCleanModeNeverInjectsBugs(t *testing.T) {
	for seed := int64(0); seed < 500; seed++ {
		sc := mustGen(t, seed, genOpt(false))
		if sc.FIFOBuggy || sc.Filter == "buggy" || sc.BugLoopInit || sc.BugJoinOrder {
			t.Fatalf("seed %d: clean-mode generator emitted a buggy component: %+v", seed, sc)
		}
	}
}

// TestGenerateValidatesOptions pins the typed rejection of out-of-range
// generator bounds.
func TestGenerateValidatesOptions(t *testing.T) {
	cases := []struct {
		name  string
		tweak func(*GenOptions)
		field string
	}{
		{"zero frames", func(o *GenOptions) { o.MaxFrames = 0 }, "MaxFrames"},
		{"one frame", func(o *GenOptions) { o.MaxFrames = 1 }, "MaxFrames"},
		{"negative frames", func(o *GenOptions) { o.MaxFrames = -4 }, "MaxFrames"},
		{"zero stages", func(o *GenOptions) { o.MaxStages = 0 }, "MaxStages"},
		{"negative stages", func(o *GenOptions) { o.MaxStages = -1 }, "MaxStages"},
		{"zero graph nodes", func(o *GenOptions) { o.MaxGraphNodes = 0 }, "MaxGraphNodes"},
		{"negative graph nodes", func(o *GenOptions) { o.MaxGraphNodes = -2 }, "MaxGraphNodes"},
		{"zero graph depth", func(o *GenOptions) { o.MaxGraphDepth = 0 }, "MaxGraphDepth"},
		{"negative graph pct", func(o *GenOptions) { o.GraphPct = -1 }, "GraphPct"},
		{"oversized graph pct", func(o *GenOptions) { o.GraphPct = 101 }, "GraphPct"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opt := DefaultGenOptions()
			tc.tweak(&opt)
			sc, err := Generate(1, opt)
			if sc != nil || err == nil {
				t.Fatalf("expected rejection, got sc=%v err=%v", sc, err)
			}
			var ge *GenOptionsError
			if !errors.As(err, &ge) {
				t.Fatalf("error is not a *GenOptionsError: %v", err)
			}
			if ge.Field != tc.field {
				t.Fatalf("rejected field %q, expected %q (%v)", ge.Field, tc.field, err)
			}
		})
	}
	if _, err := Generate(1, DefaultGenOptions()); err != nil {
		t.Fatalf("default options rejected: %v", err)
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	sc := mustGen(t, 7, genOpt(true))
	b, err := sc.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	var back Scenario
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*sc, back) {
		t.Fatalf("JSON round trip changed the scenario:\n%+v\n%+v", sc, back)
	}
}

// TestFuzzSmokeClean is the in-tree slice of the CI fuzz-smoke job: a batch
// of clean-mode seeds must pass every oracle on a healthy tree.
func TestFuzzSmokeClean(t *testing.T) {
	n := int64(40)
	if testing.Short() {
		n = 12
	}
	for seed := int64(0); seed < n; seed++ {
		sc := mustGen(t, seed, genOpt(false))
		if out := RunSeed(sc); out.Failure != nil {
			t.Errorf("seed %d: %v\nscenario: %+v", seed, out.Failure, sc)
		}
	}
}

// TestSameSeedSameTrace is the reproducibility audit at the harness level:
// two record runs of the same scenario must produce byte-identical traces
// and VCD dumps (without this property shrinking would be meaningless).
func TestSameSeedSameTrace(t *testing.T) {
	sc := mustGen(t, 3, genOpt(false))
	a := runScenario(sc, runOpts{record: true, faults: true, vcd: true, watchdog: recordWatchdog})
	b := runScenario(sc, runOpts{record: true, faults: true, vcd: true, watchdog: recordWatchdog})
	if a.err != nil || b.err != nil {
		t.Fatalf("runs errored: %v / %v", a.err, b.err)
	}
	if !bytes.Equal(a.tr.Bytes(), b.tr.Bytes()) {
		t.Fatal("same scenario produced different traces")
	}
	if !bytes.Equal(a.vcd, b.vcd) {
		t.Fatal("same scenario produced different VCD dumps")
	}
}

// TestCorpusRediscoversCaseStudies pins the permanent regression corpus:
// each checked-in shrunk reproducer must still fail its recorded oracle, the
// entries must cover the two internal/bugs case studies, and the two planted
// design-compiler bugs must be pinned by golden-divergence reproducers.
func TestCorpusRediscoversCaseStudies(t *testing.T) {
	entries, err := LoadCorpus("corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 4 {
		t.Fatalf("expected ≥ 4 corpus entries, got %d", len(entries))
	}
	byName := map[string]*CorpusEntry{}
	for _, e := range entries {
		byName[e.Name] = e
		out := RunSeed(&e.Scenario)
		if out.Failure == nil {
			t.Errorf("corpus %s no longer fails (regression oracle lost)", e.Name)
			continue
		}
		if out.Failure.Kind != e.Kind {
			t.Errorf("corpus %s fails with %s, recorded %s", e.Name, out.Failure.Kind, e.Kind)
		}
	}
	if e := byName["atop"]; e == nil || e.Scenario.Filter != "buggy" || e.Kind != FailMutation {
		t.Error("corpus must pin the §5.3 atop-filter mutation deadlock")
	}
	if e := byName["framefifo"]; e == nil || !e.Scenario.FIFOBuggy || e.Kind != FailEcho {
		t.Error("corpus must pin the §5.2 frame-FIFO data loss")
	}
	if e := byName["loopinit"]; e == nil || !e.Scenario.BugLoopInit ||
		e.Scenario.Graph == nil || e.Scenario.Graph.Stats().Loops == 0 || e.Kind != FailGolden {
		t.Error("corpus must pin the planted feedback-loop init-order compiler bug")
	}
	if e := byName["joinorder"]; e == nil || !e.Scenario.BugJoinOrder ||
		e.Scenario.Graph == nil || e.Scenario.Graph.Stats().Forks == 0 || e.Kind != FailGolden {
		t.Error("corpus must pin the planted join-ordering compiler bug")
	}
}

// TestCorpusShrunkFromOrigin re-derives each corpus entry's original failing
// scenario from its recorded generator seed and checks the acceptance
// criterion: the shrunk reproducer is at most half the original's size.
func TestCorpusShrunkFromOrigin(t *testing.T) {
	entries, err := LoadCorpus("corpus")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		orig := mustGen(t, e.OriginSeed, genOpt(true))
		if orig.Size() != e.OriginSize {
			t.Errorf("%s: origin seed %d now generates size %d, recorded %d",
				e.Name, e.OriginSeed, orig.Size(), e.OriginSize)
		}
		out := RunSeed(orig)
		if out.Failure == nil || out.Failure.Kind != e.Kind {
			t.Errorf("%s: origin seed %d no longer fails with %s: %v",
				e.Name, e.OriginSeed, e.Kind, out.Failure)
			continue
		}
		if 2*e.Scenario.Size() > orig.Size() {
			t.Errorf("%s: shrunk size %d not ≤ half of original %d",
				e.Name, e.Scenario.Size(), orig.Size())
		}
	}
}

// TestShrinkPreservesFailureKind runs the full shrinker on one origin per
// corpus entry and checks the result still fails identically and is no
// larger than the checked-in reproducer.
func TestShrinkPreservesFailureKind(t *testing.T) {
	if testing.Short() {
		t.Skip("shrinking runs dozens of simulations")
	}
	entries, err := LoadCorpus("corpus")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		orig := mustGen(t, e.OriginSeed, genOpt(true))
		shrunk, runs := Shrink(orig, e.Kind, nil)
		out := RunSeed(shrunk)
		if out.Failure == nil || out.Failure.Kind != e.Kind {
			t.Errorf("%s: shrunk scenario lost the %s failure: %v", e.Name, e.Kind, out.Failure)
		}
		if shrunk.Size() > e.Scenario.Size() {
			t.Errorf("%s: shrink regressed: size %d > corpus %d (after %d runs)",
				e.Name, shrunk.Size(), e.Scenario.Size(), runs)
		}
	}
}

// TestOracleCatchesInjectedBugs drives the two bug knobs directly (outside
// the generator) so each oracle's detection path is covered even if the
// corpus entries change.
func TestOracleCatchesInjectedBugs(t *testing.T) {
	base := &Scenario{Seed: 11, Frames: 3, FIFOFrags: 16, DrainRate: 2}
	t.Run("framefifo", func(t *testing.T) {
		sc := base.clone()
		sc.FIFOBuggy = true
		sc.StartDelay = 200
		out := RunSeed(sc)
		if out.Failure == nil || out.Failure.Kind != FailEcho {
			t.Fatalf("expected %s, got %v", FailEcho, out.Failure)
		}
	})
	t.Run("atop", func(t *testing.T) {
		sc := base.clone()
		sc.Filter = "buggy"
		sc.MutateProbe = true
		out := RunSeed(sc)
		if out.Failure == nil || out.Failure.Kind != FailMutation {
			t.Fatalf("expected %s, got %v", FailMutation, out.Failure)
		}
	})
	t.Run("fixed-components-pass", func(t *testing.T) {
		sc := base.clone()
		sc.Filter = "fixed"
		sc.StartDelay = 200
		sc.MutateProbe = true
		if out := RunSeed(sc); out.Failure != nil {
			t.Fatalf("fixed components should pass: %v", out.Failure)
		}
	})
}
