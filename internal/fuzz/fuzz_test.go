package fuzz

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a := Generate(seed, GenOptions{InjectBugs: seed%2 == 0})
		b := Generate(seed, GenOptions{InjectBugs: seed%2 == 0})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: generator not deterministic:\n%+v\n%+v", seed, a, b)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid scenario: %v", seed, err)
		}
	}
}

func TestGenerateCleanModeNeverInjectsBugs(t *testing.T) {
	for seed := int64(0); seed < 500; seed++ {
		sc := Generate(seed, GenOptions{})
		if sc.FIFOBuggy || sc.Filter == "buggy" {
			t.Fatalf("seed %d: clean-mode generator emitted a buggy component: %+v", seed, sc)
		}
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	sc := Generate(7, GenOptions{InjectBugs: true})
	b, err := sc.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	var back Scenario
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*sc, back) {
		t.Fatalf("JSON round trip changed the scenario:\n%+v\n%+v", sc, back)
	}
}

// TestFuzzSmokeClean is the in-tree slice of the CI fuzz-smoke job: a batch
// of clean-mode seeds must pass every oracle on a healthy tree.
func TestFuzzSmokeClean(t *testing.T) {
	n := int64(40)
	if testing.Short() {
		n = 12
	}
	for seed := int64(0); seed < n; seed++ {
		sc := Generate(seed, GenOptions{})
		if out := RunSeed(sc); out.Failure != nil {
			t.Errorf("seed %d: %v\nscenario: %+v", seed, out.Failure, sc)
		}
	}
}

// TestSameSeedSameTrace is the reproducibility audit at the harness level:
// two record runs of the same scenario must produce byte-identical traces
// and VCD dumps (without this property shrinking would be meaningless).
func TestSameSeedSameTrace(t *testing.T) {
	sc := Generate(3, GenOptions{})
	a := runScenario(sc, runOpts{record: true, faults: true, vcd: true, watchdog: recordWatchdog})
	b := runScenario(sc, runOpts{record: true, faults: true, vcd: true, watchdog: recordWatchdog})
	if a.err != nil || b.err != nil {
		t.Fatalf("runs errored: %v / %v", a.err, b.err)
	}
	if !bytes.Equal(a.tr.Bytes(), b.tr.Bytes()) {
		t.Fatal("same scenario produced different traces")
	}
	if !bytes.Equal(a.vcd, b.vcd) {
		t.Fatal("same scenario produced different VCD dumps")
	}
}

// TestCorpusRediscoversCaseStudies pins the permanent regression corpus:
// each checked-in shrunk reproducer must still fail its recorded oracle, and
// the two entries must cover the two internal/bugs case studies.
func TestCorpusRediscoversCaseStudies(t *testing.T) {
	entries, err := LoadCorpus("corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 2 {
		t.Fatalf("expected ≥ 2 corpus entries, got %d", len(entries))
	}
	byName := map[string]*CorpusEntry{}
	for _, e := range entries {
		byName[e.Name] = e
		out := RunSeed(&e.Scenario)
		if out.Failure == nil {
			t.Errorf("corpus %s no longer fails (regression oracle lost)", e.Name)
			continue
		}
		if out.Failure.Kind != e.Kind {
			t.Errorf("corpus %s fails with %s, recorded %s", e.Name, out.Failure.Kind, e.Kind)
		}
	}
	if e := byName["atop"]; e == nil || e.Scenario.Filter != "buggy" || e.Kind != FailMutation {
		t.Error("corpus must pin the §5.3 atop-filter mutation deadlock")
	}
	if e := byName["framefifo"]; e == nil || !e.Scenario.FIFOBuggy || e.Kind != FailEcho {
		t.Error("corpus must pin the §5.2 frame-FIFO data loss")
	}
}

// TestCorpusShrunkFromOrigin re-derives each corpus entry's original failing
// scenario from its recorded generator seed and checks the acceptance
// criterion: the shrunk reproducer is at most half the original's size.
func TestCorpusShrunkFromOrigin(t *testing.T) {
	entries, err := LoadCorpus("corpus")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		orig := Generate(e.OriginSeed, GenOptions{InjectBugs: true})
		if orig.Size() != e.OriginSize {
			t.Errorf("%s: origin seed %d now generates size %d, recorded %d",
				e.Name, e.OriginSeed, orig.Size(), e.OriginSize)
		}
		out := RunSeed(orig)
		if out.Failure == nil || out.Failure.Kind != e.Kind {
			t.Errorf("%s: origin seed %d no longer fails with %s: %v",
				e.Name, e.OriginSeed, e.Kind, out.Failure)
			continue
		}
		if 2*e.Scenario.Size() > orig.Size() {
			t.Errorf("%s: shrunk size %d not ≤ half of original %d",
				e.Name, e.Scenario.Size(), orig.Size())
		}
	}
}

// TestShrinkPreservesFailureKind runs the full shrinker on one origin per
// corpus entry and checks the result still fails identically and is no
// larger than the checked-in reproducer.
func TestShrinkPreservesFailureKind(t *testing.T) {
	if testing.Short() {
		t.Skip("shrinking runs dozens of simulations")
	}
	entries, err := LoadCorpus("corpus")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		orig := Generate(e.OriginSeed, GenOptions{InjectBugs: true})
		shrunk, runs := Shrink(orig, e.Kind, nil)
		out := RunSeed(shrunk)
		if out.Failure == nil || out.Failure.Kind != e.Kind {
			t.Errorf("%s: shrunk scenario lost the %s failure: %v", e.Name, e.Kind, out.Failure)
		}
		if shrunk.Size() > e.Scenario.Size() {
			t.Errorf("%s: shrink regressed: size %d > corpus %d (after %d runs)",
				e.Name, shrunk.Size(), e.Scenario.Size(), runs)
		}
	}
}

// TestOracleCatchesInjectedBugs drives the two bug knobs directly (outside
// the generator) so each oracle's detection path is covered even if the
// corpus entries change.
func TestOracleCatchesInjectedBugs(t *testing.T) {
	base := &Scenario{Seed: 11, Frames: 3, FIFOFrags: 16, DrainRate: 2}
	t.Run("framefifo", func(t *testing.T) {
		sc := base.clone()
		sc.FIFOBuggy = true
		sc.StartDelay = 200
		out := RunSeed(sc)
		if out.Failure == nil || out.Failure.Kind != FailEcho {
			t.Fatalf("expected %s, got %v", FailEcho, out.Failure)
		}
	})
	t.Run("atop", func(t *testing.T) {
		sc := base.clone()
		sc.Filter = "buggy"
		sc.MutateProbe = true
		out := RunSeed(sc)
		if out.Failure == nil || out.Failure.Kind != FailMutation {
			t.Fatalf("expected %s, got %v", FailMutation, out.Failure)
		}
	})
	t.Run("fixed-components-pass", func(t *testing.T) {
		sc := base.clone()
		sc.Filter = "fixed"
		sc.StartDelay = 200
		sc.MutateProbe = true
		if out := RunSeed(sc); out.Failure != nil {
			t.Fatalf("fixed components should pass: %v", out.Failure)
		}
	})
}
