package fuzz

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// CorpusEntry is one checked-in regression reproducer: a shrunk failing
// scenario, the oracle it fails, and the provenance of the original find so
// the shrink can be re-validated from scratch.
type CorpusEntry struct {
	// Name labels the entry (and its file: <name>.json).
	Name string `json:"name"`
	// Kind is the failure the scenario must still reproduce.
	Kind FailureKind `json:"kind"`
	// OriginSeed is the generator seed (bug-injection mode) that first
	// produced the failure; OriginSize is that scenario's Size() before
	// shrinking.
	OriginSeed int64 `json:"origin_seed"`
	OriginSize int   `json:"origin_size"`
	// Scenario is the shrunk reproducer.
	Scenario Scenario `json:"scenario"`
}

// WriteCorpus serializes entry to dir/<name>.json.
func WriteCorpus(dir string, e *CorpusEntry) error {
	if e.Name == "" {
		return fmt.Errorf("fuzz: corpus entry needs a name")
	}
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, e.Name+".json"), b, 0o644)
}

// LoadCorpus reads every *.json entry in dir, sorted by name.
func LoadCorpus(dir string) ([]*CorpusEntry, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	var out []*CorpusEntry
	for _, path := range names {
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		e := &CorpusEntry{}
		if err := json.Unmarshal(b, e); err != nil {
			return nil, fmt.Errorf("fuzz: %s: %w", path, err)
		}
		if e.Name == "" {
			e.Name = strings.TrimSuffix(filepath.Base(path), ".json")
		}
		if err := e.Scenario.Validate(); err != nil {
			return nil, fmt.Errorf("fuzz: %s: %w", path, err)
		}
		out = append(out, e)
	}
	return out, nil
}
