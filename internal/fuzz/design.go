package fuzz

import (
	"encoding/binary"
	"fmt"

	"vidi/internal/axi"
	"vidi/internal/bugs"
	"vidi/internal/design"
	"vidi/internal/shell"
	"vidi/internal/sim"
)

// OutBase is where the pipeline's write-back lands in host DRAM.
const OutBase = 0x20_0000

// fragBytes is the payload width of one pipeline fragment.
const fragBytes = 4

// pipeline instantiates a Scenario's FPGA-side design on a shell system:
//
//	pcis → front → FrameFIFO → pump → [fifo stages…] → (graph) → drain → (filter) → pcim
//
// The CPU DMA-writes frames over pcis; the front splits each 512-bit beat
// into sixteen 32-bit fragments and pushes whole frames into a FrameFIFO
// (the §5.2 case-study component); once started via an OCL register write
// the pump drains fragments into a chain of generic FIFO stages and then,
// when the scenario carries one, through a compiled dataflow graph
// (internal/design); the drain reassembles 64-byte chunks and writes them
// back to host DRAM over pcim, optionally through the §5.3 atop filter.
// Completion raises one interrupt.
type pipeline struct {
	sc   *Scenario
	sys  *shell.System
	fifo *bugs.FrameFIFO

	front  *front
	pump   *pump
	drain  *drain
	writer *axi.WriteManager
	filter *bugs.AtopFilter
	irq    *sim.Sender
	inst   *design.Instance

	// Sent is the payload T1 DMA-writes; the data oracles predict host DRAM
	// at OutBase from it after a record run.
	Sent []byte
}

// newDesign builds the pipeline onto sys. The scenario must be valid.
func newDesign(sc *Scenario, sys *shell.System) *pipeline {
	d := &pipeline{sc: sc, sys: sys}
	s := sys.Sim

	d.fifo = bugs.NewFrameFIFO(sc.FIFOFrags, sc.FIFOBuggy)

	ctl := &ctrl{}
	regs := axi.NewRegSubordinate("fz-regs", sys.OCL)
	regs.OnWrite = func(addr uint64, val uint32) {
		if addr == 0 && val == 1 {
			ctl.started = true
		}
	}
	regs.OnRead = func(addr uint64) uint32 { return 0 }
	s.Register(regs)

	d.front = &front{iface: sys.PCIS, fifo: d.fifo}
	s.Register(d.front)

	// Fragment chain: pump → sender → [fifo stages…] → tail channel.
	ch := s.NewChannel("fz.chain0", fragBytes)
	head := sim.NewSender("fz-head", ch)
	s.Register(head)
	for i, depth := range sc.Stages {
		next := s.NewChannel(fmt.Sprintf("fz.chain%d", i+1), fragBytes)
		s.Register(sim.NewFifo(fmt.Sprintf("fz-stage%d", i), ch, next, depth))
		ch = next
	}

	d.pump = &pump{ctl: ctl, fifo: d.fifo, out: head, rate: sc.DrainRate}
	s.Register(d.pump)

	// Compiled dataflow graph between the FIFO chain and the drain. The
	// fragments become its rate-1 token stream; the drain consumes its
	// output channel instead of the chain tail.
	if sc.Graph != nil {
		gout := s.NewChannel("fz.gout", fragBytes)
		d.inst = sc.Graph.Compile(s, ch, gout, design.CompileOptions{
			Prefix:       "fzg",
			BugLoopInit:  sc.BugLoopInit,
			BugJoinOrder: sc.BugJoinOrder,
		})
		ch = gout
	}

	// Write-back target: pcim directly, or through the atop filter.
	target := sys.PCIM
	if sc.Filter != "" {
		internal := axi.NewFull(s, "fz-int")
		d.filter = bugs.NewAtopFilter(internal, sys.PCIM, sc.Filter == "buggy")
		s.Register(d.filter)
		target = internal
	}
	d.writer = axi.NewWriteManager("fz-writer", target)
	s.Register(d.writer)
	d.irq = sim.NewSender("fz-irq", sys.IRQ)
	s.Register(d.irq)

	d.drain = &drain{in: ch, fifo: d.fifo, writer: d.writer, irq: d.irq,
		expected: sc.Frames * 16}
	s.Register(d.drain)

	// Park the noise buses so reads/writes there always complete.
	s.Register(axi.NewRegSubordinate("fz-sda-park", sys.SDA))
	s.Register(axi.NewRegSubordinate("fz-bar1-park", sys.BAR1))

	// Shared Go state invisible to the signal graph: the FrameFIFO (front
	// pushes, pump pops, drain reads Dropped), the started flag (register
	// hook → pump), the sender/irq queues (pump/drain push from Tick) and
	// the writer's op queue + Done callbacks (drain).
	s.Tie(regs, d.front, d.pump, head, d.drain, d.writer, d.irq)

	return d
}

// Program enqueues the host-side workload.
func (d *pipeline) Program(cpu *shell.CPU) {
	sc := d.sc
	rng := sim.NewRand(sc.Seed ^ 0xda7a)
	d.Sent = make([]byte, sc.Frames*64)
	rng.Read(d.Sent)

	t1 := cpu.NewThread("fz-data")
	for f := 0; f < sc.Frames; f++ {
		t1.DMAWrite(uint64(f*64), d.Sent[f*64:(f+1)*64])
	}
	t1.WaitIRQ()

	t2 := cpu.NewThread("fz-ctrl")
	if sc.StartDelay > 0 {
		t2.Sleep(sc.StartDelay)
	}
	t2.WriteReg(shell.OCL, 0, 1)

	if len(sc.Noise) > 0 {
		t3 := cpu.NewThread("fz-noise")
		for _, op := range sc.Noise {
			bus := shell.SDA
			if op.Bus == 2 {
				bus = shell.BAR1
			}
			if op.Write {
				t3.WriteReg(bus, op.Addr, op.Val)
			} else {
				t3.ReadReg(bus, op.Addr, nil)
			}
		}
	}
}

// Done reports FPGA-side quiescence: the completion interrupt was sent and
// every write-back fully completed.
func (d *pipeline) Done() bool {
	return d.drain.irqSent && d.writer.Idle() && d.front.idle()
}

// LossErr reports fragments dropped at ingress by the buggy FrameFIFO.
// The golden oracle is only meaningful on a loss-free run, so the harness
// checks loss first and attributes it separately.
func (d *pipeline) LossErr() error {
	if n := len(d.fifo.Dropped); n > 0 {
		return fmt.Errorf("fuzz: FrameFIFO dropped %d fragments (first at arrival %d)",
			n, d.fifo.Dropped[0])
	}
	return nil
}

// EchoErr compares host DRAM against the sent payload (graph-free record
// runs only). A buggy FrameFIFO that dropped fragments shifts the write-back
// stream, so the comparison fails — the end-to-end data oracle.
func (d *pipeline) EchoErr() error {
	got := []byte(d.sys.HostDRAM[OutBase : OutBase+len(d.Sent)])
	for i := range got {
		if got[i] != d.Sent[i] {
			return fmt.Errorf("fuzz: echo mismatch at byte %d (dropped fragments: %d)",
				i, len(d.fifo.Dropped))
		}
	}
	return nil
}

// GoldenErr compares host DRAM against the design package's cycle-free
// golden-model prediction over the sent fragment stream — the differential
// oracle for graph-carrying scenarios. Only valid when LossErr is nil: a
// drop at ingress shifts the token stream and the prediction with it.
func (d *pipeline) GoldenErr() error {
	frags := make([]uint32, len(d.Sent)/fragBytes)
	for i := range frags {
		frags[i] = binary.LittleEndian.Uint32(d.Sent[i*fragBytes:])
	}
	pred := frags
	if d.sc.Graph != nil {
		pred = d.sc.Graph.Golden(frags)
	}
	want := make([]byte, len(pred)*fragBytes)
	for i, v := range pred {
		binary.LittleEndian.PutUint32(want[i*fragBytes:], v)
	}
	got := []byte(d.sys.HostDRAM[OutBase : OutBase+len(want)])
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf(
				"fuzz: golden divergence at byte %d (fragment %d): got %#02x, golden model predicts %#02x",
				i, i/fragBytes, got[i], want[i])
		}
	}
	return nil
}

// ctrl is the start flag shared between the register file and the pump.
type ctrl struct{ started bool }

// front is the pcis subordinate: it accepts DMA write bursts, splits each
// 512-bit beat into sixteen 32-bit fragments and pushes whole frames into
// the FrameFIFO. With the fixed FIFO a burst is only consumed when the whole
// frame fits — back-pressure; the buggy FIFO always "accepts" and drops.
type front struct {
	sim.EvalTracker
	iface *axi.Interface
	fifo  *bugs.FrameFIFO

	awBuf []axi.AWPayload
	wBuf  []axi.WPayload
	bAct  bool
}

// Name implements sim.Module.
func (f *front) Name() string { return "fz-front" }

func (f *front) idle() bool { return len(f.awBuf) == 0 && len(f.wBuf) == 0 && !f.bAct }

// Eval implements sim.Module: outputs are functions of registered state.
func (f *front) Eval() {
	f.iface.AW.Ready.Set(len(f.awBuf) < 4)
	f.iface.W.Ready.Set(len(f.wBuf) < 8)
	f.iface.B.Valid.Set(f.bAct)
	if f.bAct {
		f.iface.B.Data.Set(axi.BPayload{Resp: axi.RespOKAY}.Encode())
	}
	f.iface.AR.Ready.Set(false)
	f.iface.R.Valid.Set(false)
}

// Sensitivity implements sim.Sensitive.
func (f *front) Sensitivity() sim.Sensitivity {
	return sim.Sensitivity{Drives: []sim.Signal{
		f.iface.AW.Ready, f.iface.W.Ready, f.iface.B.Valid, f.iface.B.Data,
		f.iface.AR.Ready, f.iface.R.Valid,
	}}
}

func (f *front) busy() bool { return !f.idle() }

// Tick implements sim.Module.
func (f *front) Tick() {
	if f.busy() {
		f.Touch()
	}
	defer func() {
		if f.busy() {
			f.Touch()
		}
	}()
	if f.iface.AW.Fired() {
		f.awBuf = append(f.awBuf, axi.DecodeAW(f.iface.AW.Data.Get(), false))
	}
	if f.iface.W.Fired() {
		f.wBuf = append(f.wBuf, axi.DecodeW(f.iface.W.Data.Get(), false))
	}
	if !f.bAct && len(f.awBuf) > 0 && len(f.wBuf) >= int(f.awBuf[0].Len)+1 {
		need := int(f.awBuf[0].Len) + 1
		room := f.fifo.Cap() - f.fifo.Len()
		if f.fifo.Buggy || room >= 16*need {
			for b := 0; b < need; b++ {
				beat := f.wBuf[b]
				frame := make([]uint32, 16)
				for i := range frame {
					frame[i] = binary.LittleEndian.Uint32(beat.Data[i*4:])
				}
				f.fifo.PushFrame(frame)
			}
			f.awBuf = f.awBuf[1:]
			f.wBuf = f.wBuf[need:]
			f.bAct = true
		}
	}
	if f.bAct && f.iface.B.Fired() {
		f.bAct = false
	}
}

// pump pops fragments from the FrameFIFO into the chain once started. Its
// Tick is ungated (no TickSensitive) so it behaves identically under both
// kernels without depending on wake conditions.
type pump struct {
	sim.NullEval
	ctl  *ctrl
	fifo *bugs.FrameFIFO
	out  *sim.Sender
	rate int
}

// Name implements sim.Module.
func (p *pump) Name() string { return "fz-pump" }

// Tick implements sim.Module.
func (p *pump) Tick() {
	if !p.ctl.started {
		return
	}
	for i := 0; i < p.rate; i++ {
		v, ok := p.fifo.Pop()
		if !ok {
			return
		}
		var b [fragBytes]byte
		binary.LittleEndian.PutUint32(b[:], v)
		p.out.Push(b[:])
	}
}

// drain is the chain's tail: it collects fragments, reassembles 64-byte
// chunks and writes them back to host DRAM via the write manager. When every
// expected fragment is accounted for (arrived or dropped by the buggy FIFO)
// and all write-backs completed, it raises one interrupt. Completion counts
// drops exactly like the §5.2 echo server, so the interrupt is
// cycle-independent and fires even in lossy runs.
type drain struct {
	in       *sim.Channel
	fifo     *bugs.FrameFIFO
	writer   *axi.WriteManager
	irq      *sim.Sender
	expected int

	got     []byte
	flushed int
	pending int
	closed  bool
	irqSent bool
}

// Name implements sim.Module.
func (d *drain) Name() string { return "fz-drain" }

// Eval implements sim.Module: the drain is always ready.
func (d *drain) Eval() { d.in.Ready.Set(true) }

// Sensitivity implements sim.Sensitive.
func (d *drain) Sensitivity() sim.Sensitivity {
	return sim.Sensitivity{Drives: d.in.ReceiverSignals()}
}

// EvalStable implements sim.Stable: the drain drives a constant.
func (d *drain) EvalStable() bool { return true }

// Tick implements sim.Module.
func (d *drain) Tick() {
	if d.in.Fired() {
		d.got = append(d.got, d.in.Data.Snapshot()...)
	}
	// Every expected fragment either arrived or was dropped at ingress ⇒
	// nothing is still in flight in the chain.
	if !d.closed && len(d.got)/fragBytes+len(d.fifo.Dropped) >= d.expected {
		d.closed = true
	}
	for len(d.got)-d.flushed >= 64 {
		d.push(d.got[d.flushed : d.flushed+64])
		d.flushed += 64
	}
	if d.closed && d.flushed < len(d.got) {
		// Final partial chunk (possible only after drops).
		d.push(d.got[d.flushed:])
		d.flushed = len(d.got)
	}
	if d.closed && d.pending == 0 && d.flushed == len(d.got) && !d.irqSent {
		d.irqSent = true
		d.irq.Push([]byte{1, 0})
	}
}

func (d *drain) push(chunk []byte) {
	buf := append([]byte(nil), chunk...)
	d.pending++
	d.writer.Push(axi.WriteOp{
		Addr: OutBase + uint64(d.flushed),
		Data: buf,
		Done: func(uint8) { d.pending-- },
	})
}
