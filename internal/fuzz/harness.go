package fuzz

import (
	"bytes"
	"fmt"
	"io"

	"vidi/internal/core"
	"vidi/internal/fault"
	"vidi/internal/shell"
	"vidi/internal/sim"
	"vidi/internal/telemetry"
	"vidi/internal/trace"
)

// FailureKind classifies which oracle a scenario failed.
type FailureKind string

const (
	// FailRun: the execution itself errored — deadlock, combinational loop,
	// protocol-checker violation, store fault or cycle-budget exhaustion.
	FailRun FailureKind = "run-error"
	// FailEcho: host DRAM after the run differs from the DMA-written
	// payload (end-to-end data loss or corruption).
	FailEcho FailureKind = "echo-mismatch"
	// FailGolden: a graph-carrying design's host-DRAM bytes differ from the
	// design package's cycle-free golden-model prediction (the differential
	// compiler oracle).
	FailGolden FailureKind = "golden-divergence"
	// FailKernel: legacy fixpoint and sensitivity-graph scheduler produced
	// different traces or VCD dumps for the same seed.
	FailKernel FailureKind = "kernel-divergence"
	// FailReplay: replaying the recorded trace errored or diverged from the
	// recording.
	FailReplay FailureKind = "replay-divergence"
	// FailMutation: replaying a legally reordered copy of the trace (W end
	// moved before its AW end on pcim, §5.3) did not complete.
	FailMutation FailureKind = "mutation-deadlock"
)

// Failure describes one oracle violation.
type Failure struct {
	Kind   FailureKind `json:"kind"`
	Detail string      `json:"detail"`
}

func (f *Failure) Error() string { return fmt.Sprintf("%s: %s", f.Kind, f.Detail) }

// Outcome is the harness verdict for one scenario.
type Outcome struct {
	Scenario *Scenario
	// Failure is nil when every oracle passed.
	Failure *Failure
	// Cycles is the scheduler-kernel record run's length.
	Cycles uint64
	// Unrecorded counts degraded-recording gaps observed by the replay
	// comparison (allowed; reported for visibility).
	Unrecorded uint64
}

// Run-budget constants: generated designs are tiny (tens of frames through
// shallow FIFO chains), so these bounds are generous while keeping a
// deadlocked probe cheap to detect.
const (
	maxRunCycles   = 2_000_000
	maxProbeCycles = 500_000
	probeWatchdog  = 4_000
	recordWatchdog = 100_000
)

// runOpts selects one execution of a scenario.
type runOpts struct {
	legacy   bool
	workers  int          // scheduler worker count when > 0
	noCheck  bool         // disable the dynamic sensitivity audit
	replay   *trace.Trace // nil = record mode
	record   bool         // attach a recording (validation) monitor
	faults   bool         // arm the scenario's fault plan
	vcd      bool         // capture a VCD dump of the boundary channels
	tel      *telemetry.Sink
	watchdog uint64
	budget   uint64
}

// runResult is one execution's artifacts.
type runResult struct {
	tr     *trace.Trace
	vcd    []byte
	design *pipeline
	cycles uint64
	err    error
}

// runScenario assembles and runs one execution of sc, mirroring the eval
// harness's system/shim wiring for an unregistered (generated) design.
func runScenario(sc *Scenario, o runOpts) *runResult {
	res := &runResult{}
	replaying := o.replay != nil
	sys := shell.NewSystem(shell.Config{
		Replay:    replaying,
		Seed:      sc.Seed,
		JitterMax: sc.JitterMax,
		Telemetry: o.tel,
	})
	sys.Sim.SetLegacy(o.legacy)
	if o.workers > 0 {
		sys.Sim.SetWorkers(o.workers)
	}
	if o.tel != nil {
		sys.Sim.SetTelemetry(o.tel)
	}
	// The conformance fuzzer doubles as the dynamic sensitivity auditor:
	// scheduler-side runs execute with declaration checking armed, so a
	// generated module touching a signal outside its declared Sensitivity
	// surfaces as a run error (finding) instead of a silent missed wakeup.
	// The audit forces sequential execution, so runs that exist to exercise
	// parallel worker pools opt out via noCheck.
	sys.Sim.SetSensitivityCheck(!o.legacy && !o.noCheck)
	if o.watchdog > 0 {
		sys.Sim.WatchdogWindow = o.watchdog
	}
	d := newDesign(sc, sys)
	res.design = d

	opts := core.Options{
		BufBytes:          sc.BufBytes,
		DegradedRecording: sc.Degraded,
		Link:              sys.PCIe,
		Telemetry:         o.tel,
	}
	if replaying {
		opts.Mode = core.ModeReplay
		opts.ReplayTrace = o.replay
		opts.Record = o.record
		opts.ValidateOutputs = o.record
	} else {
		opts.Mode = core.ModeRecord
		opts.ValidateOutputs = true
	}
	shim, err := core.NewShim(sys.Sim, sys.Boundary, opts)
	if err != nil {
		res.err = err
		return res
	}
	if o.faults {
		fault.Arm(sc.faultPlan(), sys, shim)
	}

	var vcdBuf bytes.Buffer
	if o.vcd {
		w := sim.NewVCDWriter(sys.Sim, &vcdBuf)
		for _, bc := range sys.Boundary.Channels() {
			w.AddChannel(bc.App)
		}
		sys.Sim.Register(w)
		defer func() {
			if cerr := w.Close(); cerr != nil && res.err == nil {
				res.err = cerr
			}
			res.vcd = vcdBuf.Bytes()
		}()
	}

	var done func() bool
	if replaying {
		done = func() bool { return shim.ReplayDone() && d.Done() }
	} else {
		d.Program(sys.CPU)
		done = func() bool { return sys.CPU.Done() && d.Done() }
	}
	budget := o.budget
	if budget == 0 {
		budget = maxRunCycles
	}
	res.cycles, res.err = sys.Sim.Run(budget, done)
	res.tr = shim.Trace()
	return res
}

// RunSeed executes the full oracle stack for sc:
//
//  1. record on the scheduler kernel; the run must complete cleanly with no
//     ingress loss, and the bytes in host DRAM must match the data oracle —
//     the sent payload for graph-free designs (echo), or the design
//     package's golden-model prediction for graph-carrying ones
//     (differential compiler conformance);
//  2. record on the legacy kernel; trace and VCD must be byte-identical to
//     the scheduler kernel's (differential kernel conformance);
//  3. replay the recorded trace; the validation trace must compare clean
//     (degraded-recording gaps allowed, counted in Unrecorded);
//  4. if MutateProbe: replay a copy with the first pcim W end legally moved
//     before its AW end; the design must still complete.
func RunSeed(sc *Scenario) *Outcome {
	out, _ := runOracles(sc, nil)
	return out
}

// runOracles is RunSeed with an optional telemetry sink attached to the
// scheduler-kernel record leg, whose run result is returned for coverage
// extraction (nil when the scenario failed validation).
func runOracles(sc *Scenario, tel *telemetry.Sink) (*Outcome, *runResult) {
	out := &Outcome{Scenario: sc}
	if err := sc.Validate(); err != nil {
		out.Failure = &Failure{Kind: FailRun, Detail: err.Error()}
		return out, nil
	}

	// Oracle 1: clean completion + data integrity on the scheduler kernel.
	// Ingress loss is attributed first (FailEcho, the §5.2 signature); a
	// loss-free graph run is then held to the golden model exactly.
	rec := runScenario(sc, runOpts{record: true, faults: true, vcd: true, watchdog: recordWatchdog, tel: tel})
	out.Cycles = rec.cycles
	if rec.err != nil {
		out.Failure = &Failure{Kind: FailRun, Detail: fmt.Sprintf("record (scheduler kernel): %v", rec.err)}
		return out, rec
	}
	if err := rec.design.LossErr(); err != nil {
		out.Failure = &Failure{Kind: FailEcho, Detail: err.Error()}
		return out, rec
	}
	if sc.Graph == nil {
		if err := rec.design.EchoErr(); err != nil {
			out.Failure = &Failure{Kind: FailEcho, Detail: err.Error()}
			return out, rec
		}
	} else if err := rec.design.GoldenErr(); err != nil {
		out.Failure = &Failure{Kind: FailGolden, Detail: err.Error()}
		return out, rec
	}

	// Oracle 2: the legacy fixpoint kernel must reproduce the same bytes.
	leg := runScenario(sc, runOpts{legacy: true, record: true, faults: true, vcd: true, watchdog: recordWatchdog})
	if leg.err != nil {
		out.Failure = &Failure{Kind: FailRun, Detail: fmt.Sprintf("record (legacy kernel): %v", leg.err)}
		return out, rec
	}
	if !bytes.Equal(rec.tr.Bytes(), leg.tr.Bytes()) {
		out.Failure = &Failure{Kind: FailKernel, Detail: "trace bytes differ between kernels"}
		return out, rec
	}
	if !bytes.Equal(rec.vcd, leg.vcd) {
		out.Failure = &Failure{Kind: FailKernel, Detail: "VCD bytes differ between kernels"}
		return out, rec
	}

	// Oracle 3: record → replay exactness (including degraded gaps).
	rep := runScenario(sc, runOpts{replay: mustCopy(rec.tr), record: true, watchdog: recordWatchdog})
	if rep.err != nil {
		out.Failure = &Failure{Kind: FailReplay, Detail: fmt.Sprintf("replay run: %v", rep.err)}
		return out, rec
	}
	report, err := core.Compare(rec.tr, rep.tr)
	if err != nil {
		out.Failure = &Failure{Kind: FailReplay, Detail: fmt.Sprintf("compare: %v", err)}
		return out, rec
	}
	out.Unrecorded = report.Unrecorded
	if !report.Clean() {
		out.Failure = &Failure{Kind: FailReplay, Detail: report.String()}
		return out, rec
	}
	if !sc.Degraded && report.Unrecorded > 0 {
		out.Failure = &Failure{Kind: FailReplay,
			Detail: fmt.Sprintf("%d unrecorded transactions without degraded recording", report.Unrecorded)}
		return out, rec
	}

	// Oracle 4: legal-interleaving robustness (§5.3 mutation probe).
	if sc.MutateProbe {
		mut := mustCopy(rec.tr)
		if err := core.MoveEndBefore(mut, "pcim.W", 0, "pcim.AW", 0); err == nil {
			probe := runScenario(sc, runOpts{replay: mut, watchdog: probeWatchdog, budget: maxProbeCycles})
			if probe.err != nil {
				out.Failure = &Failure{Kind: FailMutation,
					Detail: fmt.Sprintf("mutated replay (W end before AW end on pcim): %v", probe.err)}
				return out, rec
			}
		}
		// No pcim write transaction to reorder (fully lossy run): skip.
	}
	return out, rec
}

// TraceSeed re-runs sc's recording (scheduler kernel, faults armed) with the
// span tracer on and writes the Perfetto timeline to w, making a failing
// seed inspectable cycle by cycle. The timeline is written even when the run
// errors — a deadlocked seed's partial timeline shows where progress
// stopped. Returns the run's cycle count and its error, after any write
// error.
func TraceSeed(sc *Scenario, w io.Writer) (uint64, error) {
	sink := telemetry.New(telemetry.WithTracing())
	res := runScenario(sc, runOpts{record: true, faults: true, watchdog: recordWatchdog, tel: sink})
	if err := sink.WriteTrace(w); err != nil {
		return res.cycles, err
	}
	return res.cycles, res.err
}

// mustCopy deep-copies a trace through its codec; the codec round-trips its
// own output by construction.
func mustCopy(t *trace.Trace) *trace.Trace {
	c, err := trace.FromBytes(t.Bytes())
	if err != nil {
		panic(fmt.Sprintf("fuzz: trace failed to round-trip its own bytes: %v", err))
	}
	return c
}
