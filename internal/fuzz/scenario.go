// Package fuzz is Vidi's differential conformance fuzzer: a seeded random
// design-and-workload generator, a five-oracle harness that cross-checks the
// two simulation kernels, record→replay exactness, protocol cleanliness,
// legal-interleaving robustness and the design compiler's golden model on
// every generated system, and a greedy shrinker that reduces failing
// scenarios to minimal reproducers suitable for a checked-in regression
// corpus.
//
// The generated systems are transform pipelines — CPU DMA frames in over
// pcis, fragments through a FrameFIFO, an optional compiled dataflow graph
// (internal/design: fan-out/join, dealers, feedback loops, clock dividers,
// variable-latency compute), bytes back out to host DRAM over pcim. A
// data-preserving design gives the harness a free end-to-end oracle; a
// graph-carrying design upgrades it to a differential one: the bytes in
// host DRAM must equal the design package's cycle-free golden-model
// prediction exactly. The pipeline deliberately reuses the two case-study
// components from internal/bugs (the frame FIFO and the atop filter) so
// that, with bug injection enabled, the fuzzer rediscovers the paper's §5.2
// and §5.3 bugs — and the compiler's two planted graph bugs — from random
// seeds.
package fuzz

import (
	"encoding/json"
	"fmt"

	"vidi/internal/design"
	"vidi/internal/fault"
)

// NoiseOp is one background MMIO operation on an otherwise-unused bus,
// exercising the boundary channels the pipeline itself leaves quiet.
type NoiseOp struct {
	// Bus selects the MMIO bus: 1 = sda, 2 = bar1.
	Bus int `json:"bus"`
	// Write selects a register write (else a read).
	Write bool `json:"write"`
	// Addr is the 4-byte-aligned register address.
	Addr uint64 `json:"addr"`
	// Val is the written value (writes only).
	Val uint32 `json:"val,omitempty"`
}

// Scenario is one generated design + workload, fully determined by its
// fields: running the same scenario twice produces byte-identical traces.
// It is the unit the generator emits, the harness runs, the shrinker
// reduces and the corpus serializes.
type Scenario struct {
	// Seed drives every random stream of the run: environment jitter,
	// payload contents and the fault plan.
	Seed int64 `json:"seed"`
	// Frames is the number of 64-byte DMA frames the CPU writes.
	Frames int `json:"frames"`
	// FIFOFrags is the FrameFIFO capacity in 32-bit fragments (≥ 16, so one
	// frame always fits).
	FIFOFrags int `json:"fifo_frags"`
	// FIFOBuggy selects the §5.2 silently-dropping FrameFIFO revision.
	FIFOBuggy bool `json:"fifo_buggy,omitempty"`
	// Stages are the depths of the FIFO chain between pump and drain.
	Stages []int `json:"stages,omitempty"`
	// Graph, when present, is a compiled dataflow design (internal/design)
	// interposed between the FIFO chain and the drain; the 32-bit fragments
	// are its token stream and the golden model predicts the drain bytes.
	Graph *design.Graph `json:"graph,omitempty"`
	// BugLoopInit arms the compiler's planted feedback-loop bug (loop
	// initial tokens loaded in reverse order). Requires Graph.
	BugLoopInit bool `json:"bug_loop_init,omitempty"`
	// BugJoinOrder arms the compiler's planted join-ordering bug (fork
	// joins folded right-to-left). Requires Graph.
	BugJoinOrder bool `json:"bug_join_order,omitempty"`
	// Filter interposes the §5.3 atop filter on the pcim write-back path:
	// "" (absent), "fixed", or "buggy".
	Filter string `json:"filter,omitempty"`
	// StartDelay postpones the control thread's drain-start register write.
	StartDelay int `json:"start_delay,omitempty"`
	// DrainRate is the number of fragments the pump pops per cycle.
	DrainRate int `json:"drain_rate"`
	// JitterMax bounds the CPU agent's random inter-op delays.
	JitterMax int `json:"jitter_max,omitempty"`
	// Noise are background MMIO operations on sda/bar1.
	Noise []NoiseOp `json:"noise,omitempty"`
	// Degraded enables degraded recording (lossy under back-pressure).
	Degraded bool `json:"degraded,omitempty"`
	// BufBytes overrides the shim's monitor buffer size when > 0.
	BufBytes int `json:"buf_bytes,omitempty"`
	// Faults names armed fault classes (fault.Class strings).
	Faults []string `json:"faults,omitempty"`
	// MutateProbe additionally replays a legally-reordered copy of the
	// recorded trace (W end moved before its AW end on pcim), the §5.3
	// mutation that exposes interleaving assumptions.
	MutateProbe bool `json:"mutate_probe,omitempty"`
}

// Size is the shrink metric: one unit per frame, pipeline stage, graph
// node, noise op and fault, plus one per enabled feature flag. The shrinker
// minimizes it; the corpus acceptance criterion compares it against the
// originally generated scenario's size.
func (sc *Scenario) Size() int {
	n := sc.Frames + len(sc.Stages) + len(sc.Noise) + len(sc.Faults)
	if sc.Graph != nil {
		n += sc.Graph.Stats().Nodes
	}
	for _, on := range []bool{
		sc.FIFOBuggy, sc.Filter != "", sc.StartDelay > 0,
		sc.JitterMax > 0, sc.Degraded, sc.MutateProbe,
		sc.BugLoopInit, sc.BugJoinOrder,
	} {
		if on {
			n++
		}
	}
	return n
}

// Validate rejects scenarios the pipeline cannot legally instantiate.
func (sc *Scenario) Validate() error {
	if sc.Frames < 1 {
		return fmt.Errorf("fuzz: Frames must be ≥ 1, got %d", sc.Frames)
	}
	if sc.FIFOFrags < 16 {
		return fmt.Errorf("fuzz: FIFOFrags must be ≥ 16 (one frame), got %d", sc.FIFOFrags)
	}
	if sc.DrainRate < 1 {
		return fmt.Errorf("fuzz: DrainRate must be ≥ 1, got %d", sc.DrainRate)
	}
	switch sc.Filter {
	case "", "fixed", "buggy":
	default:
		return fmt.Errorf("fuzz: unknown Filter %q", sc.Filter)
	}
	for _, d := range sc.Stages {
		if d < 1 {
			return fmt.Errorf("fuzz: stage depth must be ≥ 1, got %d", d)
		}
	}
	if sc.Graph != nil {
		if err := sc.Graph.Validate(); err != nil {
			return err
		}
	} else if sc.BugLoopInit || sc.BugJoinOrder {
		return fmt.Errorf("fuzz: compiler bug knobs require a graph")
	}
	for _, op := range sc.Noise {
		if op.Bus != 1 && op.Bus != 2 {
			return fmt.Errorf("fuzz: noise bus must be 1 (sda) or 2 (bar1), got %d", op.Bus)
		}
		if op.Addr%4 != 0 {
			return fmt.Errorf("fuzz: noise address %#x not 4-byte aligned", op.Addr)
		}
	}
	if _, err := sc.faultClasses(); err != nil {
		return err
	}
	return nil
}

// faultClasses parses the Faults strings.
func (sc *Scenario) faultClasses() ([]fault.Class, error) {
	var out []fault.Class
	for _, name := range sc.Faults {
		found := false
		for _, c := range fault.Classes() {
			if c.String() == name {
				out = append(out, c)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("fuzz: unknown fault class %q", name)
		}
	}
	return out, nil
}

// faultPlan derives the scenario's deterministic fault schedule, or nil.
func (sc *Scenario) faultPlan() *fault.Plan {
	classes, err := sc.faultClasses()
	if err != nil || len(classes) == 0 {
		return nil
	}
	return fault.NewPlan(sc.Seed, classes...)
}

// clone deep-copies the scenario (for shrink candidates).
func (sc *Scenario) clone() *Scenario {
	c := *sc
	c.Stages = append([]int(nil), sc.Stages...)
	c.Noise = append([]NoiseOp(nil), sc.Noise...)
	c.Faults = append([]string(nil), sc.Faults...)
	c.Graph = sc.Graph.Clone()
	return &c
}

// MarshalIndent renders the scenario as the corpus-file JSON.
func (sc *Scenario) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(sc, "", "  ")
}
