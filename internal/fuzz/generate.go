package fuzz

import (
	"fmt"

	"vidi/internal/design"
	"vidi/internal/fault"
	"vidi/internal/sim"
)

// GenOptions configures the generator.
type GenOptions struct {
	// InjectBugs lets the generator emit scenarios carrying the buggy
	// FrameFIFO or atop-filter revisions, and arm the compiler's planted
	// graph bugs on graph-carrying scenarios. Off by default: a clean main
	// tree must fuzz clean, so buggy components only appear when hunting for
	// the regression corpus (vidi-fuzz -bugs) or in checked-in corpus
	// entries.
	InjectBugs bool
	// MaxFrames bounds the DMA workload (≥ 2: one full frame plus at least
	// one more so back-pressure is reachable).
	MaxFrames int
	// MaxStages bounds the FIFO chain length (≥ 1).
	MaxStages int
	// MaxGraphNodes bounds generated dataflow graphs (≥ 1).
	MaxGraphNodes int
	// MaxGraphDepth bounds generated graph nesting (≥ 1).
	MaxGraphDepth int
	// GraphPct is the percentage of scenarios carrying a compiled graph
	// (0..100).
	GraphPct int
}

// DefaultGenOptions returns the bounds vidi-fuzz and the tests use.
func DefaultGenOptions() GenOptions {
	return GenOptions{
		MaxFrames:     10,
		MaxStages:     3,
		MaxGraphNodes: 20,
		MaxGraphDepth: 4,
		GraphPct:      75,
	}
}

// GenOptionsError reports an out-of-range generator bound.
type GenOptionsError struct {
	Field  string
	Value  int
	Reason string
}

func (e *GenOptionsError) Error() string {
	return fmt.Sprintf("fuzz: GenOptions.%s = %d: %s", e.Field, e.Value, e.Reason)
}

// validate rejects bounds under which the generator cannot make progress.
func (opt GenOptions) validate() error {
	switch {
	case opt.MaxFrames < 2:
		return &GenOptionsError{"MaxFrames", opt.MaxFrames, "must be ≥ 2 (one frame plus back-pressure headroom)"}
	case opt.MaxStages < 1:
		return &GenOptionsError{"MaxStages", opt.MaxStages, "must be ≥ 1"}
	case opt.MaxGraphNodes < 1:
		return &GenOptionsError{"MaxGraphNodes", opt.MaxGraphNodes, "must be ≥ 1"}
	case opt.MaxGraphDepth < 1:
		return &GenOptionsError{"MaxGraphDepth", opt.MaxGraphDepth, "must be ≥ 1"}
	case opt.GraphPct < 0 || opt.GraphPct > 100:
		return &GenOptionsError{"GraphPct", opt.GraphPct, "must be in 0..100"}
	}
	return nil
}

// Generate derives a random-but-valid scenario from seed. The same seed and
// options always yield the same scenario; with InjectBugs off the scenario
// contains only fixed components, so it must pass every oracle on a healthy
// tree. Out-of-range options return a *GenOptionsError.
func Generate(seed int64, opt GenOptions) (*Scenario, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	rng := sim.NewRand(seed)
	sc := &Scenario{Seed: seed}

	sc.Frames = 2 + rng.Intn(opt.MaxFrames-1) // 2..MaxFrames 64-byte frames
	maxFrags := sc.Frames * 16
	sc.FIFOFrags = 16 + rng.Intn(maxFrags) // ≥ one frame
	if sc.FIFOFrags > maxFrags {
		sc.FIFOFrags = maxFrags
	}

	for i, n := 0, rng.Intn(opt.MaxStages+1); i < n; i++ {
		sc.Stages = append(sc.Stages, 1+rng.Intn(8))
	}

	if rng.Intn(100) < opt.GraphPct {
		sc.Graph = design.Random(rng, design.RandOptions{
			MaxNodes: opt.MaxGraphNodes,
			MaxDepth: opt.MaxGraphDepth,
		})
	}

	if rng.Intn(2) == 0 {
		sc.Filter = "fixed"
	}
	sc.DrainRate = 1 + rng.Intn(16)
	if rng.Intn(2) == 0 {
		sc.StartDelay = 50 + rng.Intn(550)
	}
	sc.JitterMax = rng.Intn(9)

	for i, n := 0, rng.Intn(6); i < n; i++ { // 0..5 background MMIO ops
		sc.Noise = append(sc.Noise, NoiseOp{
			Bus:   1 + rng.Intn(2),
			Write: rng.Intn(2) == 0,
			Addr:  uint64(rng.Intn(16)) * 4,
			Val:   rng.Uint32(),
		})
	}

	if rng.Intn(5) == 0 {
		sc.Degraded = true
		sc.BufBytes = 2048
	}

	// Fault classes restricted to the survivable online injectors: outages
	// can legitimately escalate to ErrStoreFault (a detected condition, not
	// a bug), which would poison the "clean run" oracle.
	switch rng.Intn(6) {
	case 0:
		sc.Faults = []string{fault.CPUStall.String()}
	case 1:
		sc.Faults = []string{fault.DMAHiccup.String()}
	case 2:
		sc.Faults = []string{fault.LinkBrownout.String()}
		// A brownout throttles the store's drain path; recording survives it
		// only by degrading, exactly as in the eval fault matrix.
		sc.Degraded = true
		if sc.BufBytes == 0 {
			sc.BufBytes = 4096
		}
	}

	sc.MutateProbe = rng.Intn(2) == 0

	if opt.InjectBugs {
		// Roughly a third of bug-mode scenarios carry each case-study bug.
		if rng.Intn(3) == 0 {
			sc.FIFOBuggy = true
		}
		if rng.Intn(3) == 0 {
			sc.Filter = "buggy"
			// The atop bug only deadlocks under the legal-interleaving
			// mutation, never naturally: the probe is the detector.
			sc.MutateProbe = true
		}
		// The planted compiler bugs only matter on graphs whose topology can
		// express them.
		if sc.Graph != nil {
			st := sc.Graph.Stats()
			if st.Loops > 0 && rng.Intn(3) == 0 {
				sc.BugLoopInit = true
			}
			if st.Forks > 0 && rng.Intn(3) == 0 {
				sc.BugJoinOrder = true
			}
		}
	}
	return sc, nil
}
