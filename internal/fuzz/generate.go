package fuzz

import (
	"vidi/internal/fault"
	"vidi/internal/sim"
)

// GenOptions configures the generator.
type GenOptions struct {
	// InjectBugs lets the generator emit scenarios carrying the buggy
	// FrameFIFO or atop-filter revisions. Off by default: a clean main tree
	// must fuzz clean, so buggy components only appear when hunting for the
	// regression corpus (vidi-fuzz -bugs) or in checked-in corpus entries.
	InjectBugs bool
}

// Generate derives a random-but-valid scenario from seed. The same seed
// always yields the same scenario; with InjectBugs off the scenario contains
// only fixed components, so it must pass every oracle on a healthy tree.
func Generate(seed int64, opt GenOptions) *Scenario {
	rng := sim.NewRand(seed)
	sc := &Scenario{Seed: seed}

	sc.Frames = 2 + rng.Intn(9) // 2..10 64-byte frames
	maxFrags := sc.Frames * 16
	sc.FIFOFrags = 16 + rng.Intn(maxFrags) // ≥ one frame
	if sc.FIFOFrags > maxFrags {
		sc.FIFOFrags = maxFrags
	}

	for i, n := 0, rng.Intn(4); i < n; i++ { // 0..3 chain stages
		sc.Stages = append(sc.Stages, 1+rng.Intn(8))
	}

	if rng.Intn(2) == 0 {
		sc.Filter = "fixed"
	}
	sc.DrainRate = 1 + rng.Intn(16)
	if rng.Intn(2) == 0 {
		sc.StartDelay = 50 + rng.Intn(550)
	}
	sc.JitterMax = rng.Intn(9)

	for i, n := 0, rng.Intn(6); i < n; i++ { // 0..5 background MMIO ops
		sc.Noise = append(sc.Noise, NoiseOp{
			Bus:   1 + rng.Intn(2),
			Write: rng.Intn(2) == 0,
			Addr:  uint64(rng.Intn(16)) * 4,
			Val:   rng.Uint32(),
		})
	}

	if rng.Intn(5) == 0 {
		sc.Degraded = true
		sc.BufBytes = 2048
	}

	// Fault classes restricted to the survivable online injectors: outages
	// can legitimately escalate to ErrStoreFault (a detected condition, not
	// a bug), which would poison the "clean run" oracle.
	switch rng.Intn(6) {
	case 0:
		sc.Faults = []string{fault.CPUStall.String()}
	case 1:
		sc.Faults = []string{fault.DMAHiccup.String()}
	case 2:
		sc.Faults = []string{fault.LinkBrownout.String()}
		// A brownout throttles the store's drain path; recording survives it
		// only by degrading, exactly as in the eval fault matrix.
		sc.Degraded = true
		if sc.BufBytes == 0 {
			sc.BufBytes = 4096
		}
	}

	sc.MutateProbe = rng.Intn(2) == 0

	if opt.InjectBugs {
		// Roughly a third of bug-mode scenarios carry each case-study bug.
		if rng.Intn(3) == 0 {
			sc.FIFOBuggy = true
		}
		if rng.Intn(3) == 0 {
			sc.Filter = "buggy"
			// The atop bug only deadlocks under the legal-interleaving
			// mutation, never naturally: the probe is the detector.
			sc.MutateProbe = true
		}
	}
	return sc
}
