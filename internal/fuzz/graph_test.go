package fuzz

import (
	"bytes"
	"reflect"
	"testing"

	"vidi/internal/design"
	"vidi/internal/sim"
)

// graphGenOpt forces every generated scenario to carry a compiled graph.
func graphGenOpt() GenOptions {
	opt := DefaultGenOptions()
	opt.GraphPct = 100
	return opt
}

// TestGraphScenarioKernelMatrix is the fuzz-level kernel-conformance
// property for compiled designs: for each generated graph-carrying scenario
// the legacy fixpoint kernel and the sensitivity-graph scheduler — at one
// and at two workers — must produce byte-identical traces and VCD dumps.
// The single-worker leg runs with the dynamic sensitivity audit armed; the
// two-worker leg exercises the parallel worker pool (and is what makes this
// test meaningful under -race).
func TestGraphScenarioKernelMatrix(t *testing.T) {
	n := int64(12)
	if testing.Short() {
		n = 4
	}
	for seed := int64(0); seed < n; seed++ {
		sc := mustGen(t, seed, graphGenOpt())
		ref := runScenario(sc, runOpts{legacy: true, record: true, vcd: true, watchdog: recordWatchdog})
		if ref.err != nil {
			t.Fatalf("seed %d: legacy record: %v", seed, ref.err)
		}
		for _, workers := range []int{1, 2} {
			res := runScenario(sc, runOpts{record: true, vcd: true, watchdog: recordWatchdog,
				workers: workers, noCheck: workers > 1})
			if res.err != nil {
				t.Fatalf("seed %d workers %d: scheduler record: %v", seed, workers, res.err)
			}
			if !bytes.Equal(ref.tr.Bytes(), res.tr.Bytes()) {
				t.Errorf("seed %d workers %d: trace bytes differ from legacy kernel", seed, workers)
			}
			if !bytes.Equal(ref.vcd, res.vcd) {
				t.Errorf("seed %d workers %d: VCD bytes differ from legacy kernel", seed, workers)
			}
		}
	}
}

// TestGuidedSearchSmoke is the in-tree slice of the CI fuzz-guided-smoke
// job: a small guided run must stay clean, discover at least one novel
// coverage vector beyond its first run, and be fully deterministic.
func TestGuidedSearchSmoke(t *testing.T) {
	runs := 16
	if testing.Short() {
		runs = 8
	}
	cfg := GuidedConfig{Runs: runs, SeedBase: 1, Gen: DefaultGenOptions()}
	rep, err := RunGuided(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failing > 0 {
		t.Fatalf("guided run failing on a clean tree:\n%v", rep.Failures)
	}
	if rep.NewVectors < 2 {
		t.Fatalf("guided run found %d novel vectors, want ≥ 2 (frontier never grew)", rep.NewVectors)
	}
	if rep.Frontier.Len() != rep.NewVectors {
		t.Fatalf("frontier size %d != novel vector count %d", rep.Frontier.Len(), rep.NewVectors)
	}
	again, err := RunGuided(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Vectors, again.Vectors) || rep.NewVectors != again.NewVectors {
		t.Fatal("guided search is not deterministic for a fixed config")
	}
}

// TestMutateScenarioStaysValidAndClean pins the mutation operator: always
// valid, never introduces a bug knob (guided search runs in clean mode).
func TestMutateScenarioStaysValidAndClean(t *testing.T) {
	rng := sim.NewRand(9)
	sc := mustGen(t, 2, graphGenOpt())
	for i := 0; i < 300; i++ {
		sc = MutateScenario(rng, sc, DefaultGenOptions())
		if err := sc.Validate(); err != nil {
			t.Fatalf("mutation %d produced an invalid scenario: %v", i, err)
		}
		if sc.FIFOBuggy || sc.Filter == "buggy" || sc.BugLoopInit || sc.BugJoinOrder {
			t.Fatalf("mutation %d introduced a bug knob: %+v", i, sc)
		}
	}
}

// plantedScenario builds an oversized graph-carrying scenario around root
// with one compiler bug armed, for the shrinker regressions below: the
// shrinker must strip the scaffolding yet keep the planted bug reproducing.
func plantedScenario(root design.Node, loopBug, joinBug bool) *Scenario {
	g, err := design.New(design.Pipe(
		design.Fifo(4),
		root,
		design.Fifo(6),
		design.Compute("addc", 2, 0),
	))
	if err != nil {
		panic(err)
	}
	return &Scenario{
		Seed:         21,
		Frames:       4,
		FIFOFrags:    64,
		Stages:       []int{3, 5},
		Graph:        g,
		BugLoopInit:  loopBug,
		BugJoinOrder: joinBug,
		DrainRate:    2,
		StartDelay:   120,
		JitterMax:    3,
		MutateProbe:  true,
	}
}

// TestShrinkIsolatesLoopInitBug: shrinking a golden divergence caused by
// the planted feedback-loop init-order bug must keep a loop in the graph and
// the bug armed, while cutting the scenario to a fraction of its size.
func TestShrinkIsolatesLoopInitBug(t *testing.T) {
	sc := plantedScenario(design.Loop("xor", []uint32{5, 9}, design.Compute("addc", 1, 0)), true, false)
	out := RunSeed(sc)
	if out.Failure == nil || out.Failure.Kind != FailGolden {
		t.Fatalf("planted loop-init bug did not produce %s: %v", FailGolden, out.Failure)
	}
	shrunk, runs := Shrink(sc, FailGolden, nil)
	if 2*shrunk.Size() > sc.Size() {
		t.Errorf("shrunk size %d not ≤ half of %d (after %d runs)", shrunk.Size(), sc.Size(), runs)
	}
	if !shrunk.BugLoopInit || shrunk.Graph == nil || shrunk.Graph.Stats().Loops == 0 {
		t.Fatalf("shrink lost the planted loop bug: %+v", shrunk)
	}
	if out := RunSeed(shrunk); out.Failure == nil || out.Failure.Kind != FailGolden {
		t.Fatalf("shrunk reproducer no longer diverges: %v", out.Failure)
	}
}

// TestShrinkIsolatesJoinOrderBug: same property for the planted fork
// join-ordering bug — a fork over asymmetric branches folded with a
// non-commutative op must survive shrinking.
func TestShrinkIsolatesJoinOrderBug(t *testing.T) {
	sc := plantedScenario(design.Fork("sub",
		design.Compute("not", 1, 0),
		design.Fifo(2),
	), false, true)
	out := RunSeed(sc)
	if out.Failure == nil || out.Failure.Kind != FailGolden {
		t.Fatalf("planted join-order bug did not produce %s: %v", FailGolden, out.Failure)
	}
	shrunk, runs := Shrink(sc, FailGolden, nil)
	if 2*shrunk.Size() > sc.Size() {
		t.Errorf("shrunk size %d not ≤ half of %d (after %d runs)", shrunk.Size(), sc.Size(), runs)
	}
	if !shrunk.BugJoinOrder || shrunk.Graph == nil || shrunk.Graph.Stats().Forks == 0 {
		t.Fatalf("shrink lost the planted join bug: %+v", shrunk)
	}
	if out := RunSeed(shrunk); out.Failure == nil || out.Failure.Kind != FailGolden {
		t.Fatalf("shrunk reproducer no longer diverges: %v", out.Failure)
	}
}
