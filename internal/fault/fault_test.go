package fault

import (
	"reflect"
	"sync"
	"testing"

	"vidi/internal/trace"
)

// TestPlanDeterminism: the same seed must yield a byte-identical schedule;
// a different seed must not.
func TestPlanDeterminism(t *testing.T) {
	a := NewPlan(7, Classes()...)
	b := NewPlan(7, Classes()...)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different plans:\n%v\n%v", a, b)
	}
	c := NewPlan(8, Classes()...)
	if reflect.DeepEqual(a.Specs, c.Specs) {
		t.Fatalf("different seeds produced identical schedules")
	}
}

// TestPlanWindowsSane checks every scheduled window is non-empty and starts
// inside the early-execution range the matrix depends on.
func TestPlanWindowsSane(t *testing.T) {
	p := NewPlan(99, Classes()...)
	for _, s := range p.Specs {
		for _, w := range s.Windows {
			if w.End <= w.Start {
				t.Fatalf("%s: empty window %+v", s.Class, w)
			}
			if w.Start < minStart || w.Start >= maxStart {
				t.Fatalf("%s: window start %d outside [%d,%d)", s.Class, w.Start, minStart, maxStart)
			}
		}
		if s.Severity <= 0 || s.Severity > 1 {
			t.Fatalf("%s: severity %v outside (0,1]", s.Class, s.Severity)
		}
	}
	// Outage windows must stay survivable: shorter than the store's
	// ~1k-cycle retry span.
	for _, w := range p.Spec(LinkOutage).Windows {
		if w.End-w.Start >= 500 {
			t.Fatalf("outage window %+v outlasts the retry budget", w)
		}
	}
}

// TestWindowContains pins the half-open interval semantics.
func TestWindowContains(t *testing.T) {
	w := Window{Start: 10, End: 20}
	for cy, want := range map[uint64]bool{9: false, 10: true, 19: true, 20: false} {
		if got := w.Contains(cy); got != want {
			t.Fatalf("Contains(%d) = %v, want %v", cy, got, want)
		}
	}
}

// TestCorruptFramesDeterministic: the offline mutators must be seed-stable
// and must actually mutate.
func TestCorruptFramesDeterministic(t *testing.T) {
	body := make([]byte, 500)
	for i := range body {
		body[i] = byte(i * 7)
	}
	frames := trace.FrameStream(body)
	p := NewPlan(3, BitFlip, Truncate)

	c1 := p.CorruptFrames(frames)
	c2 := p.CorruptFrames(frames)
	if !reflect.DeepEqual(c1, c2) {
		t.Fatalf("CorruptFrames is not deterministic")
	}
	if reflect.DeepEqual(c1, frames) {
		t.Fatalf("CorruptFrames did not mutate")
	}
	// The original frames stay untouched (mutation must copy).
	if _, err := trace.DeframeStream(frames); err != nil {
		t.Fatalf("CorruptFrames damaged its input: %v", err)
	}

	tr1 := p.TruncateFrames(frames)
	tr2 := p.TruncateFrames(frames)
	if len(tr1) != len(tr2) || len(tr1) >= len(frames) || len(tr1) == 0 {
		t.Fatalf("TruncateFrames lengths: %d, %d (from %d)", len(tr1), len(tr2), len(frames))
	}
}

// TestClassStrings keeps the class names stable — they appear in the
// rendered fault matrix.
func TestClassStrings(t *testing.T) {
	want := map[Class]string{
		LinkBrownout: "link-brownout",
		LinkOutage:   "link-outage",
		BitFlip:      "bit-flip",
		Truncate:     "truncate",
		CPUStall:     "cpu-stall",
		DMAHiccup:    "dma-hiccup",
	}
	for c, s := range want {
		if c.String() != s {
			t.Fatalf("%d.String() = %q, want %q", int(c), c.String(), s)
		}
	}
	if len(Classes()) != len(want) {
		t.Fatalf("Classes() has %d entries, want %d", len(Classes()), len(want))
	}
}

// TestPlanDerive: per-session derivation must be label-deterministic,
// independent across labels, and preserve the class set.
func TestPlanDerive(t *testing.T) {
	base := NewPlan(7, Classes()...)
	a1 := base.Derive("tenant-a/session-1")
	a2 := base.Derive("tenant-a/session-1")
	if !reflect.DeepEqual(a1, a2) {
		t.Fatalf("same label derived different plans")
	}
	b := base.Derive("tenant-b/session-9")
	if reflect.DeepEqual(a1.Specs, b.Specs) {
		t.Fatalf("different labels derived identical schedules")
	}
	if len(a1.Specs) != len(base.Specs) {
		t.Fatalf("derived plan lost classes: %d vs %d", len(a1.Specs), len(base.Specs))
	}
	for i := range a1.Specs {
		if a1.Specs[i].Class != base.Specs[i].Class {
			t.Fatalf("derived plan reordered classes")
		}
	}
}

// TestPlanConcurrentUse hammers one shared Plan from many goroutines the
// way vidi-serve's session handlers do. Run under -race this pins the
// documented contract: a Plan is immutable after NewPlan and every
// randomness-drawing method derives a private RNG per call.
func TestPlanConcurrentUse(t *testing.T) {
	body := make([]byte, 2000)
	for i := range body {
		body[i] = byte(i * 13)
	}
	frames := trace.FrameStream(body)
	p := NewPlan(11, Classes()...)

	ref := p.CorruptFrames(frames)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if got := p.CorruptFrames(frames); !reflect.DeepEqual(got, ref) {
					t.Errorf("goroutine %d: concurrent CorruptFrames diverged", g)
					return
				}
				p.TruncateFrames(frames)
				_ = p.Spec(LinkOutage).active(uint64(i))
				_ = p.String()
				_ = p.Derive("s").Seed
			}
		}(g)
	}
	wg.Wait()
}
