// Package fault is Vidi's deterministic fault-injection subsystem. It
// manufactures the failure modes a deployed record/replay shim must survive
// — storage-link outages and brownouts, trace corruption in transit,
// host-agent scheduling stalls, DRAM-controller hiccups — as seeded,
// schedulable injectors that plug into the simulation without touching the
// design under test.
//
// Everything is derived from a single plan seed: the same seed yields
// byte-identical fault schedules, so a failing run reproduces exactly. The
// injectors are ordinary sim.Modules (registered last, so they perturb an
// already-settled design), plus offline transport mutators for the
// storage-frame path.
package fault

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strconv"
	"strings"

	"vidi/internal/axi"
	"vidi/internal/core"
	"vidi/internal/shell"
	"vidi/internal/sim"
	"vidi/internal/telemetry"
	"vidi/internal/trace"
)

// Class enumerates the injectable fault classes.
type Class int

const (
	// LinkBrownout starves the shared PCIe token bucket for the window,
	// throttling both application DMA and the trace store to a trickle.
	LinkBrownout Class = iota
	// LinkOutage fails trace-store transfers outright for the window,
	// exercising the store's retry-with-backoff path.
	LinkOutage
	// BitFlip corrupts bytes of the framed trace in transit (offline
	// transport mutation; the CRC framing must catch every flip).
	BitFlip
	// Truncate drops the tail of the framed trace in transit (offline
	// transport mutation; the decoder must detect the loss).
	Truncate
	// CPUStall freezes the host agent's issue loop for the window,
	// modelling OS preemption of the agent process.
	CPUStall
	// DMAHiccup inflates the on-card DRAM controller's response latency
	// for the window.
	DMAHiccup

	numClasses
)

// Classes lists every injectable class.
func Classes() []Class {
	out := make([]Class, numClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case LinkBrownout:
		return "link-brownout"
	case LinkOutage:
		return "link-outage"
	case BitFlip:
		return "bit-flip"
	case Truncate:
		return "truncate"
	case CPUStall:
		return "cpu-stall"
	case DMAHiccup:
		return "dma-hiccup"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Window is a half-open cycle interval [Start, End) during which a fault is
// active.
type Window struct {
	Start, End uint64
}

// Contains reports whether cycle cy falls inside the window.
func (w Window) Contains(cy uint64) bool { return cy >= w.Start && cy < w.End }

// Spec schedules one fault class.
type Spec struct {
	Class Class
	// Windows are the active intervals, in simulation cycles. Offline
	// classes (BitFlip, Truncate) ignore windows.
	Windows []Window
	// Severity is a class-specific intensity in (0, 1]: the starved
	// bandwidth fraction for brownouts, the corruption amount scale for
	// transport mutation, the latency scale for hiccups.
	Severity float64
}

// active reports whether any window contains cy.
func (s *Spec) active(cy uint64) bool {
	for _, w := range s.Windows {
		if w.Contains(cy) {
			return true
		}
	}
	return false
}

// Plan is a complete, deterministic fault schedule.
//
// Concurrency: a Plan is immutable after NewPlan and safe for concurrent
// use from many goroutines (vidi-serve arms one per live session). No RNG
// state lives on the Plan — every method that draws randomness
// (CorruptFrames, TruncateFrames) derives a fresh seeded source per call,
// so concurrent callers never share a rand.Rand. Arm installs per-system
// closures with their own private state and must be called once per built
// system; the injectors it installs are owned by that system's simulator.
type Plan struct {
	Seed  int64
	Specs []Spec
}

// Derive returns an independent plan for the same classes, with the seed
// mixed with an fnv-64a hash of label — the per-consumer stream derivation
// the shell uses for CPU jitter. Two sessions arming the same base plan
// under different labels draw uncorrelated (but individually reproducible)
// schedules, so a serve-side chaos run can fault many concurrent sessions
// without synchronizing their windows.
func (p *Plan) Derive(label string) *Plan {
	h := fnv.New64a()
	h.Write([]byte(label))
	classes := make([]Class, len(p.Specs))
	for i := range p.Specs {
		classes[i] = p.Specs[i].Class
	}
	return NewPlan(p.Seed^int64(h.Sum64()), classes...)
}

// Per-class seed salts, so each class draws an independent deterministic
// schedule from the plan seed.
func classSalt(c Class) int64 { return 0x5eed<<16 | int64(c)*0x9e37 }

// Window-generation bounds. Starts land early enough to hit even the
// smallest benchmark apps (the DMA loopback finishes in ~6k cycles at scale
// 1); outage windows stay shorter than the store's ~1k-cycle retry span so
// a transient outage remains survivable.
const (
	minStart = 200
	maxStart = 2000
)

// NewPlan derives a deterministic schedule for the given classes from seed.
// The same (seed, classes) always produces byte-identical windows.
func NewPlan(seed int64, classes ...Class) *Plan {
	p := &Plan{Seed: seed}
	for _, c := range classes {
		rng := sim.NewRand(seed ^ classSalt(c))
		s := Spec{Class: c}
		switch c {
		case LinkBrownout:
			s.Severity = 0.95
			s.Windows = drawWindows(rng, 2, 300, 1200)
		case LinkOutage:
			s.Severity = 1.0
			s.Windows = drawWindows(rng, 1, 100, 350)
		case CPUStall:
			s.Severity = 1.0
			s.Windows = drawWindows(rng, 2, 50, 400)
		case DMAHiccup:
			s.Severity = 0.5
			s.Windows = drawWindows(rng, 3, 100, 600)
		case BitFlip:
			s.Severity = 0.5 // scales the number of flipped bytes
		case Truncate:
			s.Severity = 0.25 // fraction of trailing frames dropped
		}
		p.Specs = append(p.Specs, s)
	}
	return p
}

// drawWindows draws n non-deterministically-placed but seed-deterministic
// windows with lengths in [minLen, maxLen].
func drawWindows(rng *rand.Rand, n int, minLen, maxLen uint64) []Window {
	out := make([]Window, n)
	for i := range out {
		start := uint64(minStart) + uint64(rng.Intn(maxStart-minStart))
		length := minLen + uint64(rng.Intn(int(maxLen-minLen+1)))
		out[i] = Window{Start: start, End: start + length}
	}
	return out
}

// Spec returns the plan's spec for class c, or nil when the class is not
// scheduled.
func (p *Plan) Spec(c Class) *Spec {
	for i := range p.Specs {
		if p.Specs[i].Class == c {
			return &p.Specs[i]
		}
	}
	return nil
}

// String renders the schedule.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault plan (seed %d):", p.Seed)
	for _, s := range p.Specs {
		fmt.Fprintf(&b, "\n  %-13s severity %.2f", s.Class, s.Severity)
		for _, w := range s.Windows {
			fmt.Fprintf(&b, " [%d,%d)", w.Start, w.End)
		}
	}
	return b.String()
}

// clock is a tiny module counting simulation cycles for the injectors. It
// registers last, so injectors observing it act on the just-completed cycle
// count — deterministic by registration order like everything else.
type clock struct {
	sim.NullEval
	cycle uint64
}

func (k *clock) Name() string { return "fault-clock" }
func (k *clock) Tick()        { k.cycle++ }

// starver drains a token bucket during its windows, leaving only
// (1-Severity) of the replenish rate for real traffic.
type starver struct {
	sim.NullEval
	k      *clock
	spec   *Spec
	bucket *axi.TokenBucket

	inj       *telemetry.Counter // one injection per window entry
	wasActive bool
}

func (s *starver) Name() string { return fmt.Sprintf("fault-%s", s.spec.Class) }
func (s *starver) Tick() {
	active := s.spec.active(s.k.cycle)
	if active {
		if !s.wasActive {
			s.inj.Inc()
		}
		s.bucket.Spend(int(s.spec.Severity * s.bucket.BytesPerCy))
	}
	s.wasActive = active
}

// Arm installs the plan's injectors into a built system. sh may be nil when
// the run does not record (no trace store to fault). Offline classes
// (BitFlip, Truncate) install nothing; apply them to the framed trace with
// the plan's Corrupt/TruncateFrames methods after the run.
func Arm(p *Plan, sys *shell.System, sh *core.Shim) {
	if p == nil {
		return
	}
	k := &clock{}
	armed := false
	// Injection counters by kind, keyed to the plan seed. The shell's sink
	// may be nil, in which case every counter is a nil no-op. Each counter is
	// incremented only from the faulted component's own partition.
	sink := sys.Cfg.Telemetry
	injections := func(c Class) *telemetry.Counter {
		return sink.Counter("vidi_fault_injections_total",
			"Fault injector activations by kind, keyed to the plan seed.",
			telemetry.L("kind", c.String()),
			telemetry.L("seed", strconv.FormatInt(p.Seed, 10)))
	}
	// Injectors read the shared clock and mutate state owned by other
	// modules' partitions; collect the tie groups and apply them once the
	// clock is registered.
	var ties [][]sim.Module
	for i := range p.Specs {
		s := &p.Specs[i]
		switch s.Class {
		case LinkBrownout:
			sv := &starver{k: k, spec: s, bucket: sys.PCIe, inj: injections(s.Class)}
			sys.Sim.Register(sv)
			ties = append(ties, []sim.Module{k, sv, sys.PCIe})
			armed = true
		case LinkOutage:
			if sh != nil && sh.Store() != nil {
				spec := s
				inj := injections(s.Class)
				sh.Store().FaultFn = func(cycle uint64) bool {
					ok := !spec.active(cycle)
					if !ok {
						inj.Inc()
					}
					return ok
				}
				armed = true
			}
		case CPUStall:
			if sys.CPU != nil {
				spec := s
				inj := injections(s.Class)
				wasActive := false
				sys.CPU.StallFn = func() bool {
					active := spec.active(k.cycle)
					if active && !wasActive {
						inj.Inc()
					}
					wasActive = active
					return active
				}
				ties = append(ties, []sim.Module{k, sys.CPU})
				armed = true
			}
		case DMAHiccup:
			spec := s
			inj := injections(s.Class)
			orig := sys.DDRSub.RespDelay
			extra := 1 + int(spec.Severity*24)
			sys.DDRSub.RespDelay = func() int {
				d := 0
				if orig != nil {
					d = orig()
				}
				if spec.active(k.cycle) {
					inj.Inc()
					d += extra
				}
				return d
			}
			ties = append(ties, []sim.Module{k, sys.DDRSub})
			armed = true
		}
	}
	if armed {
		sys.Sim.Register(k)
		for _, t := range ties {
			sys.Sim.Tie(t...)
		}
	}
}

// CorruptFrames returns a copy of the framed trace with deterministic,
// seed-derived single-byte flips applied — the in-transit corruption the
// CRC framing must catch. At least one byte is always flipped.
func (p *Plan) CorruptFrames(frames [][trace.StoragePacketSize]byte) [][trace.StoragePacketSize]byte {
	out := make([][trace.StoragePacketSize]byte, len(frames))
	copy(out, frames)
	if len(out) == 0 {
		return out
	}
	sev := p.severityOf(BitFlip, 0.5)
	rng := sim.NewRand(p.Seed ^ classSalt(BitFlip))
	n := 1 + int(sev*float64(len(out)))
	for i := 0; i < n; i++ {
		fi := rng.Intn(len(out))
		bi := rng.Intn(trace.StoragePacketSize)
		out[fi][bi] ^= 1 << uint(rng.Intn(8))
	}
	return out
}

// TruncateFrames returns the framed trace with a seed-derived fraction of
// trailing frames dropped — in-transit loss the decoder must detect. At
// least one frame is always dropped.
func (p *Plan) TruncateFrames(frames [][trace.StoragePacketSize]byte) [][trace.StoragePacketSize]byte {
	if len(frames) == 0 {
		return frames
	}
	sev := p.severityOf(Truncate, 0.25)
	drop := 1 + int(sev*float64(len(frames)-1))
	if drop >= len(frames) {
		drop = len(frames) - 1
	}
	return frames[:len(frames)-drop]
}

func (p *Plan) severityOf(c Class, def float64) float64 {
	if s := p.Spec(c); s != nil && s.Severity > 0 {
		return s.Severity
	}
	return def
}
