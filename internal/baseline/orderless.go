package baseline

import (
	"vidi/internal/sim"
)

// OrderlessTrace is a Debug-Governor-style capture: per-channel content
// sequences with no ordering information across channels.
type OrderlessTrace struct {
	Channels []ChannelDesc
	Contents [][][]byte // per channel, per transaction
}

// SizeBytes is the storage cost: contents only, no ordering metadata.
func (t *OrderlessTrace) SizeBytes() uint64 {
	var n uint64
	for _, ch := range t.Contents {
		for _, c := range ch {
			n += uint64(len(c))
		}
	}
	return n
}

// OrderlessRecorder captures the data sent on each input channel,
// independently per channel.
type OrderlessRecorder struct {
	inputs []*sim.Channel
	rec    *OrderlessTrace
}

// NewOrderlessRecorder records the given input channels.
func NewOrderlessRecorder(inputs []*sim.Channel) *OrderlessRecorder {
	rec := &OrderlessTrace{Contents: make([][][]byte, len(inputs))}
	for _, ch := range inputs {
		rec.Channels = append(rec.Channels, ChannelDesc{Name: ch.Name(), Width: ch.Width()})
	}
	return &OrderlessRecorder{inputs: inputs, rec: rec}
}

// Name implements sim.Module.
func (r *OrderlessRecorder) Name() string { return "orderless-recorder" }

// Eval implements sim.Module.
func (r *OrderlessRecorder) Eval() {}

// Tick implements sim.Module.
func (r *OrderlessRecorder) Tick() {
	for i, ch := range r.inputs {
		if ch.Fired() {
			r.rec.Contents[i] = append(r.rec.Contents[i], ch.Data.Snapshot())
		}
	}
}

// Trace returns the captured trace.
func (r *OrderlessRecorder) Trace() *OrderlessTrace { return r.rec }

// OrderlessReplayer replays each channel's contents as fast as the receiver
// accepts them, with no coordination across channels — which is precisely
// why order-less replay cannot reproduce applications whose behaviour
// depends on cross-channel orderings (§1).
type OrderlessReplayer struct {
	senders []*sim.Sender
}

// NewOrderlessReplayer attaches per-channel senders for tr onto the given
// input channels and registers them with s.
func NewOrderlessReplayer(s *sim.Simulator, tr *OrderlessTrace, inputs []*sim.Channel) *OrderlessReplayer {
	r := &OrderlessReplayer{}
	for i, ch := range inputs {
		snd := sim.NewSender("orderless."+ch.Name(), ch)
		for _, c := range tr.Contents[i] {
			snd.Push(c)
		}
		s.Register(snd)
		r.senders = append(r.senders, snd)
	}
	return r
}

// Done reports whether every channel's contents have been replayed.
func (r *OrderlessReplayer) Done() bool {
	for _, s := range r.senders {
		if !s.Idle() {
			return false
		}
	}
	return true
}
