package baseline

import (
	"encoding/binary"
	"testing"

	"vidi/internal/sim"
)

// orderApp is a minimal order-dependent design: it applies "add" and "xor"
// operations to an accumulator in arrival order and emits the result after
// each operation. Its outputs depend on the cross-channel interleaving.
type orderApp struct {
	add, xor, out *sim.Channel
	acc           uint32
	queue         [][]byte
	active        bool
	cur           []byte
	Outputs       []uint32
}

func (a *orderApp) Name() string { return "orderapp" }
func (a *orderApp) Eval() {
	a.add.Ready.Set(len(a.queue) < 8)
	a.xor.Ready.Set(len(a.queue) < 8)
	a.out.Valid.Set(a.active)
	if a.active {
		a.out.Data.Set(a.cur)
	}
}
func (a *orderApp) Tick() {
	if a.add.Fired() {
		a.acc += binary.LittleEndian.Uint32(a.add.Data.Get())
		a.emit()
	}
	if a.xor.Fired() {
		a.acc ^= binary.LittleEndian.Uint32(a.xor.Data.Get())
		a.emit()
	}
	if a.active && a.out.Fired() {
		a.Outputs = append(a.Outputs, binary.LittleEndian.Uint32(a.cur))
		a.active = false
	}
	if !a.active && len(a.queue) > 0 {
		a.cur = a.queue[0]
		a.queue = a.queue[1:]
		a.active = true
	}
}
func (a *orderApp) emit() {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, a.acc)
	a.queue = append(a.queue, b)
}

type world struct {
	sim      *sim.Simulator
	app      *orderApp
	add, xor *sim.Channel
	out      *sim.Channel
}

func newWorld() *world {
	s := sim.New()
	add := s.NewChannel("add", 4)
	xor := s.NewChannel("xor", 4)
	out := s.NewChannel("out", 4)
	app := &orderApp{add: add, xor: xor, out: out}
	s.Register(app)
	return &world{sim: s, app: app, add: add, xor: xor, out: out}
}

func u32le(v uint32) []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, v)
	return b
}

// driveRecorded runs an interleaved workload with jitter, recording with
// both baselines simultaneously, and returns the output sequence.
func driveRecorded(t *testing.T, seed int64) (*world, *CycleTrace, *OrderlessTrace, []uint32) {
	t.Helper()
	w := newWorld()
	addS := sim.NewSender("addS", w.add)
	xorS := sim.NewSender("xorS", w.xor)
	outR := sim.NewReceiver("outR", w.out)
	rng := sim.NewRand(seed)
	addS.Gap = sim.GapPolicy(rng, 0, 5)
	xorS.Gap = sim.GapPolicy(rng, 0, 5)
	outR.Policy = sim.JitterPolicy(rng, 60)
	w.sim.Register(addS, xorS, outR)

	cyc := NewCycleRecorder([]*sim.Channel{w.add, w.xor}, []*sim.Channel{w.out})
	ord := NewOrderlessRecorder([]*sim.Channel{w.add, w.xor})
	w.sim.Register(cyc, ord)

	const n = 20
	for i := 0; i < n; i++ {
		addS.Push(u32le(uint32(3*i + 1)))
		xorS.Push(u32le(uint32(5*i + 2)))
	}
	if _, err := w.sim.Run(10000, func() bool { return len(w.app.Outputs) == 2*n }); err != nil {
		t.Fatal(err)
	}
	return w, cyc.Trace(), ord.Trace(), w.app.Outputs
}

func TestCycleAccurateReplayIsExact(t *testing.T) {
	_, tr, _, want := driveRecorded(t, 9)
	// Fresh instance, replayer drives the recorded signals.
	w := newWorld()
	rep, err := NewCycleReplayer(tr, []*sim.Channel{w.add, w.xor}, []*sim.Channel{w.out})
	if err != nil {
		t.Fatal(err)
	}
	// Verify cycle-exactness by re-recording during replay.
	cyc2 := NewCycleRecorder([]*sim.Channel{w.add, w.xor}, []*sim.Channel{w.out})
	w.sim.Register(rep, cyc2)
	if _, err := w.sim.Run(uint64(len(tr.Cycles))+10, rep.Done); err != nil {
		t.Fatal(err)
	}
	if len(w.app.Outputs) != len(want) {
		t.Fatalf("replay produced %d outputs, want %d", len(w.app.Outputs), len(want))
	}
	for i := range want {
		if w.app.Outputs[i] != want[i] {
			t.Fatalf("output %d: %#x vs %#x", i, w.app.Outputs[i], want[i])
		}
	}
	re := cyc2.Trace()
	re.Cycles = re.Cycles[:len(tr.Cycles)]
	if !tr.Equal(re) {
		t.Fatal("cycle-accurate replay did not reproduce the exact signal history")
	}
}

func TestOrderlessReplayDivergesOnOrderDependentApp(t *testing.T) {
	// Across several seeds, order-less replay must fail to reproduce the
	// outputs for at least most of them (it collapses all interleavings to
	// the same race).
	diverged := 0
	total := 0
	for seed := int64(1); seed <= 6; seed++ {
		_, _, ord, want := driveRecorded(t, seed)
		w := newWorld()
		rep := NewOrderlessReplayer(w.sim, ord, []*sim.Channel{w.add, w.xor})
		outR := sim.NewReceiver("outR", w.out)
		w.sim.Register(outR)
		if _, err := w.sim.Run(10000, func() bool {
			return rep.Done() && len(w.app.Outputs) == len(want)
		}); err != nil {
			t.Fatal(err)
		}
		total++
		for i := range want {
			if w.app.Outputs[i] != want[i] {
				diverged++
				break
			}
		}
	}
	if diverged == 0 {
		t.Fatalf("order-less replay reproduced all %d ordering-dependent executions; expected divergence", total)
	}
	t.Logf("order-less replay diverged on %d of %d executions", diverged, total)
}

func TestCycleTraceSizeAccounting(t *testing.T) {
	_, tr, ord, _ := driveRecorded(t, 3)
	if tr.BytesPerCycle() != 4+4+1 {
		t.Fatalf("bytes/cycle = %d, want 9", tr.BytesPerCycle())
	}
	if tr.SizeBytes() != uint64(len(tr.Cycles))*9 {
		t.Fatal("size accounting wrong")
	}
	// Order-less stores contents only: 40 transactions × 4 bytes.
	if ord.SizeBytes() != 160 {
		t.Fatalf("orderless size %d, want 160", ord.SizeBytes())
	}
	if tr.SizeBytes() <= ord.SizeBytes() {
		t.Fatal("cycle-accurate trace should dwarf the order-less trace")
	}
}

func TestCycleRecorderBufferLossModel(t *testing.T) {
	// Produce 9 B/cycle into a 32-byte buffer drained at 4 B/cycle: loss
	// begins once the buffer fills — the Panopticon failure mode of §6.
	w := newWorld()
	addS := sim.NewSender("addS", w.add)
	outR := sim.NewReceiver("outR", w.out)
	w.sim.Register(addS, outR)
	cyc := NewCycleRecorder([]*sim.Channel{w.add, w.xor}, []*sim.Channel{w.out})
	cyc.Capture = false
	cyc.BufBytes = 32
	cyc.DrainPerCycle = 4
	w.sim.Register(cyc)
	for i := 0; i < 10; i++ {
		addS.Push(u32le(uint32(i)))
	}
	if _, err := w.sim.Run(200, func() bool { return len(w.app.Outputs) == 10 }); err != nil {
		t.Fatal(err)
	}
	if cyc.LostBytes == 0 {
		t.Fatal("expected trace loss with undersized buffer")
	}
	if cyc.Total == 0 || cyc.LostBytes >= cyc.Total {
		t.Fatalf("implausible loss accounting: lost %d of %d", cyc.LostBytes, cyc.Total)
	}
}
