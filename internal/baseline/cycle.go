// Package baseline implements the two record/replay designs Vidi is
// compared against: cycle-accurate recording (ILA / SignalTap / Panopticon
// style — every input signal, every clock cycle) and order-less recording
// (Debug Governor style — per-channel content streams with no cross-channel
// ordering). They anchor Table 1's trace-reduction column, the §6 bandwidth
// analysis, and the §1/§7 argument that order-less replay cannot reproduce
// ordering-dependent applications.
package baseline

import (
	"bytes"
	"fmt"

	"vidi/internal/sim"
	"vidi/internal/trace"
)

// CycleTrace is a cycle-accurate capture: for every clock cycle, every
// input channel's VALID bit and full DATA payload, plus every output
// channel's READY bit. Replaying it drives the identical signal values in
// the identical cycles.
type CycleTrace struct {
	Inputs  []ChannelDesc
	Outputs []ChannelDesc
	Cycles  []CycleRecord
}

// ChannelDesc names a captured channel.
type ChannelDesc struct {
	Name  string
	Width int
}

// CycleRecord is the signal image of one clock cycle.
type CycleRecord struct {
	Valid []bool
	Data  [][]byte // one payload per input channel (nil when not valid)
	Ready []bool   // one per output channel
}

// BytesPerCycle is the storage cost of one cycle: all input payload bytes
// plus one bit per recorded control signal, rounded up.
func (t *CycleTrace) BytesPerCycle() int {
	n := 0
	for _, c := range t.Inputs {
		n += c.Width
	}
	bits := len(t.Inputs) + len(t.Outputs)
	return n + (bits+7)/8
}

// SizeBytes is the total trace size a cycle-accurate tool would store.
func (t *CycleTrace) SizeBytes() uint64 {
	return uint64(len(t.Cycles)) * uint64(t.BytesPerCycle())
}

// CycleRecorder captures a cycle-accurate trace of the given channels. It
// also models the bounded on-chip buffer of hardware tools: when the trace
// is produced faster than DrainPerCycle bytes can reach storage and the
// buffer overflows, the excess is counted as lost — the Panopticon failure
// mode discussed in §6.
type CycleRecorder struct {
	inputs  []*sim.Channel
	outputs []*sim.Channel
	rec     *CycleTrace

	// Capture disables signal storage when false (size accounting only),
	// for long runs where only the trace volume matters.
	Capture bool

	// BufBytes and DrainPerCycle model the on-chip staging buffer; zero
	// values mean unbounded/instant.
	BufBytes      int
	DrainPerCycle int

	buffered  int
	LostBytes uint64
	Total     uint64
}

// NewCycleRecorder creates a recorder over explicit input/output channels.
func NewCycleRecorder(inputs, outputs []*sim.Channel) *CycleRecorder {
	rec := &CycleTrace{}
	for _, ch := range inputs {
		rec.Inputs = append(rec.Inputs, ChannelDesc{Name: ch.Name(), Width: ch.Width()})
	}
	for _, ch := range outputs {
		rec.Outputs = append(rec.Outputs, ChannelDesc{Name: ch.Name(), Width: ch.Width()})
	}
	return &CycleRecorder{inputs: inputs, outputs: outputs, rec: rec, Capture: true}
}

// FromMeta builds a recorder over a boundary's environment-side channels.
func FromMeta(m *trace.Meta, chans []*sim.Channel) *CycleRecorder {
	var ins, outs []*sim.Channel
	for i, ci := range m.Channels {
		if ci.Dir == trace.Input {
			ins = append(ins, chans[i])
		} else {
			outs = append(outs, chans[i])
		}
	}
	return NewCycleRecorder(ins, outs)
}

// Name implements sim.Module.
func (r *CycleRecorder) Name() string { return "cycle-recorder" }

// Eval implements sim.Module.
func (r *CycleRecorder) Eval() {}

// Tick implements sim.Module: capture the cycle's signal image.
func (r *CycleRecorder) Tick() {
	size := r.rec.BytesPerCycle()
	r.Total += uint64(size)
	if r.BufBytes > 0 {
		r.buffered += size
		if r.DrainPerCycle > 0 {
			d := r.DrainPerCycle
			if d > r.buffered {
				d = r.buffered
			}
			r.buffered -= d
		}
		if r.buffered > r.BufBytes {
			r.LostBytes += uint64(r.buffered - r.BufBytes)
			r.buffered = r.BufBytes
		}
	}
	if !r.Capture {
		return
	}
	cr := CycleRecord{
		Valid: make([]bool, len(r.inputs)),
		Data:  make([][]byte, len(r.inputs)),
		Ready: make([]bool, len(r.outputs)),
	}
	for i, ch := range r.inputs {
		if ch.Valid.Get() {
			cr.Valid[i] = true
			cr.Data[i] = ch.Data.Snapshot()
		}
	}
	for i, ch := range r.outputs {
		cr.Ready[i] = ch.Ready.Get()
	}
	r.rec.Cycles = append(r.rec.Cycles, cr)
}

// Trace returns the captured trace.
func (r *CycleRecorder) Trace() *CycleTrace { return r.rec }

// CycleReplayer drives the recorded signal values back onto the channels,
// one cycle at a time — cycle-exact replay.
type CycleReplayer struct {
	tr      *CycleTrace
	inputs  []*sim.Channel
	outputs []*sim.Channel
	idx     int
}

// NewCycleReplayer creates a replayer driving the given channels from tr.
func NewCycleReplayer(tr *CycleTrace, inputs, outputs []*sim.Channel) (*CycleReplayer, error) {
	if len(inputs) != len(tr.Inputs) || len(outputs) != len(tr.Outputs) {
		return nil, fmt.Errorf("baseline: channel shape mismatch (%d/%d vs %d/%d)",
			len(inputs), len(outputs), len(tr.Inputs), len(tr.Outputs))
	}
	return &CycleReplayer{tr: tr, inputs: inputs, outputs: outputs}, nil
}

// Name implements sim.Module.
func (r *CycleReplayer) Name() string { return "cycle-replayer" }

// Done reports whether every recorded cycle has been driven.
func (r *CycleReplayer) Done() bool { return r.idx >= len(r.tr.Cycles) }

// Eval implements sim.Module: drive this cycle's recorded signal values.
func (r *CycleReplayer) Eval() {
	if r.Done() {
		for _, ch := range r.inputs {
			ch.Valid.Set(false)
		}
		for _, ch := range r.outputs {
			ch.Ready.Set(false)
		}
		return
	}
	cr := r.tr.Cycles[r.idx]
	for i, ch := range r.inputs {
		ch.Valid.Set(cr.Valid[i])
		if cr.Valid[i] {
			ch.Data.Set(cr.Data[i])
		}
	}
	for i, ch := range r.outputs {
		ch.Ready.Set(cr.Ready[i])
	}
}

// Tick implements sim.Module.
func (r *CycleReplayer) Tick() {
	if !r.Done() {
		r.idx++
	}
}

// Equal compares two cycle traces for identical signal histories.
func (t *CycleTrace) Equal(o *CycleTrace) bool {
	if len(t.Cycles) != len(o.Cycles) {
		return false
	}
	for i := range t.Cycles {
		a, b := t.Cycles[i], o.Cycles[i]
		for j := range a.Valid {
			if a.Valid[j] != b.Valid[j] || !bytes.Equal(a.Data[j], b.Data[j]) {
				return false
			}
		}
		for j := range a.Ready {
			if a.Ready[j] != b.Ready[j] {
				return false
			}
		}
	}
	return true
}
