package vidi

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§5), plus the §6 bandwidth analysis and the ablations called
// out in DESIGN.md. Absolute numbers come from the simulation substrate,
// not the authors' F1 testbed; the *shape* — who wins, by what rough
// factor, where the crossovers fall — is the reproduction target (see
// EXPERIMENTS.md for the side-by-side record).
//
// Run with:
//
//	go test -bench=. -benchmem
//
// Custom metrics are attached per benchmark: cycles, overhead-pct,
// trace-bytes, reduction-x, divergences, and so on.

import (
	"encoding/binary"
	"testing"
	"time"

	"vidi/internal/baseline"
	"vidi/internal/eval"
	"vidi/internal/sim"
)

// BenchmarkTable1 regenerates Table 1: per application, the native cycle
// count (ET), the recording overhead R2-vs-R1, the Vidi trace size, and the
// reduction versus a cycle-accurate trace of the same execution.
func BenchmarkTable1(b *testing.B) {
	for _, name := range eval.DefaultTableApps() {
		name := name
		b.Run(name, func(b *testing.B) {
			var last eval.Table1Row
			for i := 0; i < b.N; i++ {
				rows, err := eval.Table1([]string{name}, 1, 1, 1000+int64(i))
				if err != nil {
					b.Fatal(err)
				}
				last = rows[0]
			}
			b.ReportMetric(float64(last.CyclesNative), "cycles")
			b.ReportMetric(last.OverheadPct, "overhead-pct")
			b.ReportMetric(float64(last.TraceBytes), "trace-bytes")
			b.ReportMetric(last.Reduction, "reduction-x")
		})
	}
}

// BenchmarkTable2 regenerates Table 2: per-application resource overhead of
// the full five-interface Vidi deployment (LUT/FF/BRAM as % of the F1
// device), from the calibrated area model.
func BenchmarkTable2(b *testing.B) {
	for _, row := range eval.Table2(eval.DefaultTableApps()) {
		row := row
		b.Run(row.App, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = eval.Table2([]string{row.App})
			}
			b.ReportMetric(row.LUTPct, "LUT-pct")
			b.ReportMetric(row.FFPct, "FF-pct")
			b.ReportMetric(row.BRAMPct, "BRAM-pct")
		})
	}
}

// BenchmarkFig7 regenerates Fig 7: resource overhead versus total monitored
// width over the paper's eleven interface combinations (136–3056 bits).
func BenchmarkFig7(b *testing.B) {
	for _, row := range eval.Fig7() {
		row := row
		b.Run(row.Combo, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = eval.Fig7()
			}
			b.ReportMetric(float64(row.Bits), "bits")
			b.ReportMetric(row.LUTPct, "LUT-pct")
			b.ReportMetric(row.FFPct, "FF-pct")
			b.ReportMetric(row.BRAMPct, "BRAM-pct")
		})
	}
}

// BenchmarkEffectiveness regenerates the §5.4 experiment: record a
// reference trace (R2), replay while recording the validation trace (R3),
// and count divergences. Only the polling DRAM-DMA application diverges;
// its interrupt-patched variant (dma-irq) is clean.
func BenchmarkEffectiveness(b *testing.B) {
	names := append(eval.DefaultTableApps(), "dma-irq")
	for _, name := range names {
		name := name
		b.Run(name, func(b *testing.B) {
			var divergences, txns float64
			for i := 0; i < b.N; i++ {
				report, _, _, err := eval.RecordReplay(name, 1, 2000+int64(i))
				if err != nil {
					b.Fatal(err)
				}
				divergences = float64(len(report.Divergences))
				txns = float64(report.RefTransactions)
			}
			b.ReportMetric(divergences, "divergences")
			b.ReportMetric(txns, "transactions")
			if txns > 0 {
				b.ReportMetric(divergences/txns, "divergences/txn")
			}
		})
	}
}

// BenchmarkTraceSizes compares the trace volume of the three recording
// approaches — Vidi, order-less (Debug Governor), cycle-accurate
// (ILA/Panopticon) — per application, the quantitative basis of the design-
// space argument in §1 and §7.
func BenchmarkTraceSizes(b *testing.B) {
	for _, name := range eval.DefaultTableApps() {
		name := name
		b.Run(name, func(b *testing.B) {
			var row eval.SizeRow
			for i := 0; i < b.N; i++ {
				rows, err := eval.TraceSizes([]string{name}, 1, 3000+int64(i))
				if err != nil {
					b.Fatal(err)
				}
				row = rows[0]
			}
			b.ReportMetric(float64(row.VidiBytes), "vidi-bytes")
			b.ReportMetric(float64(row.OrderlessBytes), "orderless-bytes")
			b.ReportMetric(float64(row.CycleAccBytes), "cycleacc-bytes")
		})
	}
}

// BenchmarkSection6Bandwidth regenerates the §6 back-of-the-envelope
// analysis: the burst length after which a physical-timestamp tool
// (Panopticon) loses trace data, plus a simulated demonstration of the loss
// onset with an undersized buffer.
func BenchmarkSection6Bandwidth(b *testing.B) {
	a := eval.Section6()
	b.ReportMetric(a.RawGBps, "raw-GBps")
	b.ReportMetric(a.TimeToLossMs, "time-to-loss-ms")

	// Simulated confirmation, scaled down: stream back-to-back beats on a
	// wide channel with a cycle recorder whose buffer drains slower than
	// the production rate; loss must begin near buffer/(raw-drain).
	var lossFrac float64
	for i := 0; i < b.N; i++ {
		s := sim.New()
		ch := s.NewChannel("wide", 74) // ≈593 bits
		snd := sim.NewSender("snd", ch)
		rcv := sim.NewReceiver("rcv", ch)
		rec := baseline.NewCycleRecorder([]*sim.Channel{ch}, nil)
		rec.Capture = false
		rec.BufBytes = 4096
		rec.DrainPerCycle = 22
		s.Register(snd, rcv, rec)
		const beats = 500
		for k := 0; k < beats; k++ {
			snd.Push(make([]byte, 74))
		}
		if _, err := s.Run(10000, func() bool { return snd.Idle() && !ch.InFlight() }); err != nil {
			b.Fatal(err)
		}
		if rec.LostBytes == 0 {
			b.Fatal("expected trace loss in the Panopticon model")
		}
		lossFrac = float64(rec.LostBytes) / float64(rec.Total)
	}
	b.ReportMetric(lossFrac*100, "lost-pct")
}

// BenchmarkKernel measures simulation throughput (cycles/sec) of an R2
// recording per application under both simulation kernels: the legacy
// re-evaluate-everything fixpoint and the sensitivity-graph scheduler.
// This is the microbenchmark behind `vidi-bench -table kernel` /
// BENCH_kernel.json.
func BenchmarkKernel(b *testing.B) {
	for _, name := range append(eval.DefaultTableApps(), "dma-irq") {
		for _, k := range []struct {
			kernel string
			legacy bool
		}{{"legacy", true}, {"sched", false}} {
			b.Run(name+"/"+k.kernel, func(b *testing.B) {
				var cycles uint64
				start := time.Now()
				for i := 0; i < b.N; i++ {
					res, err := eval.Run(eval.RunConfig{
						App: name, Scale: 1, Seed: 7, Cfg: eval.R2, LegacyKernel: k.legacy,
					})
					if err != nil {
						b.Fatal(err)
					}
					cycles += res.Cycles
				}
				b.ReportMetric(float64(cycles)/time.Since(start).Seconds(), "cycles/sec")
			})
		}
	}
}

// BenchmarkOrderlessBaseline quantifies why order-less record/replay
// (Debug Governor) is ineffective: replaying an order-dependent design from
// per-channel content streams alone fails to reproduce the outputs.
func BenchmarkOrderlessBaseline(b *testing.B) {
	diverged, total := 0, 0
	for i := 0; i < b.N; i++ {
		for seed := int64(0); seed < 5; seed++ {
			want, ord := runOrderWorkload(b, 100+seed)
			got := replayOrderless(b, ord)
			total++
			for k := range want {
				if k >= len(got) || got[k] != want[k] {
					diverged++
					break
				}
			}
		}
	}
	b.ReportMetric(float64(diverged)/float64(total)*100, "diverged-pct")
	if diverged == 0 {
		b.Fatal("order-less replay unexpectedly reproduced every ordering-dependent run")
	}
}

// BenchmarkAblationEveryCyclePacket measures what Table 1's trace sizes
// would be without the event-only cycle-packet optimization: one packet per
// clock cycle, the way a timestamped encoding behaves.
func BenchmarkAblationEveryCyclePacket(b *testing.B) {
	var eventOnly, everyCycle float64
	for i := 0; i < b.N; i++ {
		r1, err := eval.Run(eval.RunConfig{App: "sha", Scale: 1, Seed: 5, Cfg: eval.R2})
		if err != nil {
			b.Fatal(err)
		}
		r2, err := eval.Run(eval.RunConfig{App: "sha", Scale: 1, Seed: 5, Cfg: eval.R2, EmitIdlePackets: true,
			BufBytes: 64 << 20, StoreBytesPerCycle: 1 << 20})
		if err != nil {
			b.Fatal(err)
		}
		eventOnly = float64(r1.Trace.SizeBytes())
		everyCycle = float64(r2.Trace.SizeBytes())
	}
	b.ReportMetric(eventOnly, "event-only-bytes")
	b.ReportMetric(everyCycle, "every-cycle-bytes")
	b.ReportMetric(everyCycle/eventOnly, "inflation-x")
	if everyCycle <= eventOnly {
		b.Fatal("idle packets should inflate the trace")
	}
}

// BenchmarkAblationStoreAndForward measures the recording latency cost of
// the conservative store-and-forward monitor versus the default cut-through
// design.
func BenchmarkAblationStoreAndForward(b *testing.B) {
	var ct, saf float64
	for i := 0; i < b.N; i++ {
		r1, err := eval.Run(eval.RunConfig{App: "dma", Scale: 1, Seed: 9, Cfg: eval.R2})
		if err != nil {
			b.Fatal(err)
		}
		r2, err := eval.Run(eval.RunConfig{App: "dma", Scale: 1, Seed: 9, Cfg: eval.R2, StoreAndForward: true})
		if err != nil {
			b.Fatal(err)
		}
		ct, saf = float64(r1.Cycles), float64(r2.Cycles)
	}
	b.ReportMetric(ct, "cut-through-cycles")
	b.ReportMetric(saf, "store-and-forward-cycles")
	b.ReportMetric((saf-ct)/ct*100, "saf-penalty-pct")
}

// --- order-less baseline workload (a miniature order-dependent design) ---

type benchOrderApp struct {
	add, xor, out *sim.Channel
	acc           uint32
	queue         [][]byte
	active        bool
	cur           []byte
	Outputs       []uint32
}

func (a *benchOrderApp) Name() string { return "orderapp" }
func (a *benchOrderApp) Eval() {
	a.add.Ready.Set(len(a.queue) < 8)
	a.xor.Ready.Set(len(a.queue) < 8)
	a.out.Valid.Set(a.active)
	if a.active {
		a.out.Data.Set(a.cur)
	}
}
func (a *benchOrderApp) Tick() {
	if a.add.Fired() {
		a.acc += binary.LittleEndian.Uint32(a.add.Data.Get())
		a.emit()
	}
	if a.xor.Fired() {
		a.acc ^= binary.LittleEndian.Uint32(a.xor.Data.Get())
		a.emit()
	}
	if a.active && a.out.Fired() {
		a.Outputs = append(a.Outputs, binary.LittleEndian.Uint32(a.cur))
		a.active = false
	}
	if !a.active && len(a.queue) > 0 {
		a.cur = a.queue[0]
		a.queue = a.queue[1:]
		a.active = true
	}
}
func (a *benchOrderApp) emit() {
	buf := make([]byte, 4)
	binary.LittleEndian.PutUint32(buf, a.acc)
	a.queue = append(a.queue, buf)
}

func buildOrderWorld() (*sim.Simulator, *benchOrderApp, *sim.Channel, *sim.Channel, *sim.Channel) {
	s := sim.New()
	add := s.NewChannel("add", 4)
	xor := s.NewChannel("xor", 4)
	out := s.NewChannel("out", 4)
	app := &benchOrderApp{add: add, xor: xor, out: out}
	s.Register(app)
	return s, app, add, xor, out
}

func runOrderWorkload(b *testing.B, seed int64) ([]uint32, *baseline.OrderlessTrace) {
	b.Helper()
	s, app, add, xor, out := buildOrderWorld()
	addS := sim.NewSender("addS", add)
	xorS := sim.NewSender("xorS", xor)
	outR := sim.NewReceiver("outR", out)
	rng := sim.NewRand(seed)
	addS.Gap = sim.GapPolicy(rng, 0, 5)
	xorS.Gap = sim.GapPolicy(rng, 0, 5)
	outR.Policy = sim.JitterPolicy(rng, 60)
	ord := baseline.NewOrderlessRecorder([]*sim.Channel{add, xor})
	s.Register(addS, xorS, outR, ord)
	const n = 20
	for k := 0; k < n; k++ {
		v := make([]byte, 4)
		binary.LittleEndian.PutUint32(v, uint32(3*k+1))
		addS.Push(v)
		binary.LittleEndian.PutUint32(v, uint32(5*k+2))
		xorS.Push(v)
	}
	if _, err := s.Run(10000, func() bool { return len(app.Outputs) == 2*n }); err != nil {
		b.Fatal(err)
	}
	return app.Outputs, ord.Trace()
}

func replayOrderless(b *testing.B, tr *baseline.OrderlessTrace) []uint32 {
	b.Helper()
	s, app, add, xor, out := buildOrderWorld()
	rep := baseline.NewOrderlessReplayer(s, tr, []*sim.Channel{add, xor})
	outR := sim.NewReceiver("outR", out)
	s.Register(outR)
	if _, err := s.Run(10000, func() bool { return rep.Done() && len(app.Outputs) == 40 }); err != nil {
		b.Fatal(err)
	}
	return app.Outputs
}
