module vidi

go 1.22
