# Vidi (Go reproduction) — convenience targets.

GO ?= go

.PHONY: all build vet lint waivers vuln staticcheck fmt-check test test-short test-race race-golden fuzz-smoke fuzz-guided-smoke telemetry-smoke serve-chaos-smoke serve-load-smoke ci bench tables examples fuzz clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific analyzers (sensaudit + handshake + detaudit + partwrite).
# Runs standalone with -tests (so _test.go packages are audited too) and
# through go vet's -vettool protocol so the two entry points cannot drift
# apart.
lint:
	$(GO) run ./cmd/vidi-lint -tests ./...
	$(GO) build -o /tmp/vidi-lint-vettool ./cmd/vidi-lint
	$(GO) vet -vettool=/tmp/vidi-lint-vettool ./...

# Inventory of every in-source //lint:<analyzer> <reason> waiver, as the
# reviewable JSON artifact CI uploads next to the lint gate.
waivers:
	$(GO) run ./cmd/vidi-lint -waivers -json ./...

# Known-vulnerability scan. Locally skipped with a notice when the binary
# is absent (nothing is installed implicitly); CI installs a pinned version.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (CI runs a pinned version)"; \
	fi

# Strict external lint gate. Locally skipped with a notice when the binary
# is absent (nothing is installed implicitly); CI installs a pinned version.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs a pinned version)"; \
	fi

# Fails (and lists the offenders) if any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race -short ./...

# Kernel golden regressions, the fuzz-smoke seed batch and the design
# compiler's compiled-vs-golden matrix under the race detector: the suites
# that exercise both kernels (and the parallel worker pool) concurrently.
# VIDI_TRIPWIRE arms the dual-run determinism tripwire: every golden app
# re-run under permuted workers/GOMAXPROCS and seeded schedule
# perturbation must produce byte-identical traces, VCD and telemetry.
race-golden:
	$(GO) test -race -count=1 -run 'TestKernelGolden' ./internal/eval
	VIDI_TRIPWIRE=1 $(GO) test -race -count=1 -run 'TestDeterminismTripwire' ./internal/eval
	$(GO) test -race -count=1 ./internal/fuzz
	$(GO) test -race -count=1 ./internal/design

# Differential conformance fuzzer: fresh seeds must run clean and every
# checked-in corpus reproducer must still fail its recorded oracle.
fuzz-smoke:
	$(GO) run ./cmd/vidi-fuzz -seeds 50 -corpus internal/fuzz/corpus

# Coverage-guided search: the frontier must grow (≥ 1 novel coverage vector),
# every oracle must stay clean, all five graph topology classes must be
# exercised, and the coverage report lands in BENCH_coverage.json.
fuzz-guided-smoke:
	$(GO) run ./cmd/vidi-fuzz -guided -seeds 60 -min-new 1 -coverage-out BENCH_coverage.json

# End-to-end telemetry smoke: an instrumented recording must emit a metrics
# snapshot vidi-top can render and a timeline it validates as trace_event
# JSON, and the live -app mode must work for both acceptance apps.
telemetry-smoke:
	$(GO) run ./cmd/vidi-record -app sssp -seed 42 -out /tmp/vidi-smoke.vidt \
	    -metrics /tmp/vidi-smoke-metrics.json -trace-out /tmp/vidi-smoke-trace.json
	$(GO) run ./cmd/vidi-top -metrics /tmp/vidi-smoke-metrics.json
	$(GO) run ./cmd/vidi-top -trace /tmp/vidi-smoke-trace.json
	$(GO) run ./cmd/vidi-top -app framefifo -seed 7

# Service fault matrix under the race detector: live vidi-serve instances
# take chaos-injected uploads (wire corruption, brownouts, store outages,
# kill-and-restart mid-session) and must end with zero corrupted manifests
# and zero silent divergences. The full 13-scenario matrix, not -short.
serve-chaos-smoke:
	$(GO) test -race -count=1 -run TestChaosMatrix ./internal/serve

# Open-loop load harness under the race detector: 1100 seeded sessions
# (record/replay/compare/degraded mix) against a self-hosted vidi-serve,
# rendezvous-held until at least 1000 run concurrently. Fails on any
# session failure, silent divergence, spent error budget, or a peak below
# the floor; the per-endpoint latency report lands in BENCH_serve.json
# (render it with `vidi-top -load BENCH_serve.json`).
serve-load-smoke:
	$(GO) run -race ./cmd/vidi-load -sessions 1100 -min-concurrent 1000 -min-peak 1000 \
	    -rate 4000 -seed 42 -segment-frames 32 -out BENCH_serve.json

# The exact sequence CI runs (.github/workflows/ci.yml).
ci: build vet lint staticcheck vuln fmt-check test-short test-race race-golden fuzz-smoke fuzz-guided-smoke telemetry-smoke serve-chaos-smoke serve-load-smoke

# One benchmark run per table/figure; results also land in bench_output.txt.
# Also regenerates BENCH_kernel.json (cycles/sec per app, legacy vs
# scheduler, plus the sink-overhead column) and BENCH_metrics.json (the
# merged telemetry snapshot of the instrumented runs) so the kernel perf
# trajectory is tracked across PRs.
bench:
	$(GO) test -bench=. -benchtime=1x -benchmem ./... 2>&1 | tee bench_output.txt
	$(GO) run ./cmd/vidi-bench -table kernel -reps 2 -workers 1,2 -baseline BENCH_kernel.json -json BENCH_kernel.json -metrics BENCH_metrics.json

# Formatted paper-vs-measured tables (Table 1/2, Fig 7, §5.4, §6, sizes).
tables:
	$(GO) run ./cmd/vidi-bench -all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/debugging
	$(GO) run ./examples/testing
	$(GO) run ./examples/custom-boundary

# Exercise the trace-decoder fuzz target for 30s.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzDecode -fuzztime 30s ./internal/trace

clean:
	rm -f test_output.txt bench_output.txt *.vidt *.vidz *.vcd
