package main

import (
	"encoding/json"
	"fmt"
	"os"

	"vidi/internal/analysis"
)

// runVet executes one go vet unit: vet invokes the tool once per package
// with a JSON .cfg file describing the files, the import map and the export
// data it already compiled.
func runVet(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vidi-lint:", err)
		return 2
	}
	var cfg analysis.VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "vidi-lint: %s: %v\n", cfgPath, err)
		return 2
	}
	// vet caches a facts file per unit; this suite carries no facts but the
	// file must exist for the cache entry to be valid.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "vidi-lint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	ld, err := analysis.NewVetLoader(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "vidi-lint:", err)
		return 2
	}
	diags, err := analysis.Run(ld, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "vidi-lint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", ld.Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
