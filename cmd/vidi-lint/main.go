// Command vidi-lint runs the vidi analyzer suite (sensaudit, handshake,
// detaudit, partwrite) over Go packages. It works in two modes:
//
// Standalone, over go-list patterns:
//
//	vidi-lint ./...
//	vidi-lint -analyzers sensaudit ./internal/axi
//	vidi-lint -tests -json ./...
//	vidi-lint -waivers ./...
//
// As a go vet tool, which reuses vet's build-cache-driven package loading:
//
//	go vet -vettool=$(which vidi-lint) ./...
//
// Flags (standalone mode only): -analyzers selects a comma-separated
// subset; -tests additionally analyzes each package's _test.go variant;
// -json emits machine-readable diagnostics on stdout; -waivers inventories
// every `//lint:` directive with its reason instead of running the
// analyzers (combinable with -json, emitted as a CI artifact).
//
// Exit status is 0 when no diagnostics were reported, 1 when findings
// exist, 2 on a loading or internal error. Diagnostics are suppressed by
// `//lint:<analyzer> <reason>` comments on the diagnosed line, the line
// above it, or the enclosing function's doc comment; the reason is
// mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"vidi/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// jsonDiag is the machine-readable diagnostic shape emitted by -json.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string) int {
	// go vet probes its -vettool with -V=full before handing it .cfg files.
	if len(args) > 0 {
		switch {
		case strings.HasPrefix(args[0], "-V"):
			fmt.Println("vidi-lint version 1")
			return 0
		case args[0] == "-flags":
			fmt.Println("[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return runVet(args[0])
		}
	}

	fs := flag.NewFlagSet("vidi-lint", flag.ContinueOnError)
	names := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	tests := fs.Bool("tests", false, "also analyze each package's _test.go variant")
	asJSON := fs.Bool("json", false, "emit machine-readable JSON on stdout")
	waivers := fs.Bool("waivers", false, "inventory //lint: waivers instead of running the analyzers")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	analyzers, err := selectAnalyzers(*names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vidi-lint:", err)
		return 2
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vidi-lint:", err)
		return 2
	}
	ld, err := analysis.NewLoaderWithTests(wd, *tests, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vidi-lint:", err)
		return 2
	}

	if *waivers {
		ws := analysis.Waivers(ld, analyzers)
		if *asJSON {
			if ws == nil {
				ws = []analysis.WaiverRecord{}
			}
			if err := writeJSON(ws); err != nil {
				fmt.Fprintln(os.Stderr, "vidi-lint:", err)
				return 2
			}
			return 0
		}
		for _, w := range ws {
			reason := w.Reason
			if reason == "" {
				reason = "(missing reason)"
			}
			fmt.Printf("%s:%d: //lint:%s %s\n", w.File, w.Line, w.Analyzer, reason)
		}
		return 0
	}

	diags, err := analysis.Run(ld, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vidi-lint:", err)
		return 2
	}
	if *asJSON {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			pos := ld.Fset.Position(d.Pos)
			out = append(out, jsonDiag{
				File:     pos.Filename,
				Line:     pos.Line,
				Column:   pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		if err := writeJSON(out); err != nil {
			fmt.Fprintln(os.Stderr, "vidi-lint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", ld.Fset.Position(d.Pos), d.Message, d.Analyzer)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// writeJSON emits v indented on stdout, with empty slices rendered as []
// rather than null.
func writeJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	if names == "" {
		return analysis.All(), nil
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		found := false
		for _, a := range analysis.All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
	}
	return out, nil
}
