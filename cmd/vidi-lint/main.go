// Command vidi-lint runs the vidi analyzer suite (sensaudit, handshake)
// over Go packages. It works in two modes:
//
// Standalone, over go-list patterns:
//
//	vidi-lint ./...
//	vidi-lint -analyzers sensaudit ./internal/axi
//
// As a go vet tool, which reuses vet's build-cache-driven package loading:
//
//	go vet -vettool=$(which vidi-lint) ./...
//
// Exit status is 0 when no diagnostics were reported, 1 when findings
// exist, 2 on a loading or internal error. Diagnostics are suppressed by
// `//lint:sensaudit <reason>` / `//lint:handshake <reason>` comments on the
// diagnosed line, the line above it, or the enclosing function's doc
// comment; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vidi/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// go vet probes its -vettool with -V=full before handing it .cfg files.
	if len(args) > 0 {
		switch {
		case strings.HasPrefix(args[0], "-V"):
			fmt.Println("vidi-lint version 1")
			return 0
		case args[0] == "-flags":
			fmt.Println("[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return runVet(args[0])
		}
	}

	fs := flag.NewFlagSet("vidi-lint", flag.ContinueOnError)
	names := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	analyzers, err := selectAnalyzers(*names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vidi-lint:", err)
		return 2
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vidi-lint:", err)
		return 2
	}
	ld, err := analysis.NewLoader(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vidi-lint:", err)
		return 2
	}
	diags, err := analysis.Run(ld, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vidi-lint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", ld.Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	if names == "" {
		return analysis.All(), nil
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		found := false
		for _, a := range analysis.All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
	}
	return out, nil
}
