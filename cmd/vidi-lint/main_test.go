package main

import (
	"os/exec"
	"path/filepath"
	"testing"
)

// buildTool compiles vidi-lint into a temp dir and returns the binary path.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "vidi-lint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build vidi-lint: %v\n%s", err, out)
	}
	return bin
}

func exitCode(t *testing.T, cmd *exec.Cmd) (int, string) {
	t.Helper()
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode(), string(out)
	}
	t.Fatalf("%v: %v\n%s", cmd.Args, err, out)
	return -1, ""
}

// TestStandaloneExitCodes runs the built binary against a clean package
// (exit 0) and the deliberately-broken sensaudit fixture (exit 1).
func TestStandaloneExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the lint binary; skipped in -short mode")
	}
	bin := buildTool(t)

	clean := exec.Command(bin, "./internal/vclock")
	clean.Dir = "../.."
	if code, out := exitCode(t, clean); code != 0 {
		t.Errorf("clean package: exit %d, want 0\n%s", code, out)
	}

	dirty := exec.Command(bin, "./internal/analysis/testdata/src/sensfix")
	dirty.Dir = "../.."
	code, out := exitCode(t, dirty)
	if code != 1 {
		t.Errorf("fixture package: exit %d, want 1\n%s", code, out)
	}
	if out == "" {
		t.Error("fixture package: expected diagnostics on stderr, got none")
	}
}

// TestVetTool drives the binary through go vet's -vettool protocol.
func TestVetTool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the lint binary under go vet; skipped in -short mode")
	}
	bin := buildTool(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./internal/vclock")
	cmd.Dir = "../.."
	if code, out := exitCode(t, cmd); code != 0 {
		t.Errorf("go vet -vettool: exit %d, want 0\n%s", code, out)
	}
}
