package main

import (
	"bytes"
	"encoding/json"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles vidi-lint into a temp dir and returns the binary path.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "vidi-lint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build vidi-lint: %v\n%s", err, out)
	}
	return bin
}

func exitCode(t *testing.T, cmd *exec.Cmd) (int, string) {
	t.Helper()
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode(), string(out)
	}
	t.Fatalf("%v: %v\n%s", cmd.Args, err, out)
	return -1, ""
}

// TestStandaloneExitCodes runs the built binary against a clean package
// (exit 0) and the deliberately-broken sensaudit fixture (exit 1).
func TestStandaloneExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the lint binary; skipped in -short mode")
	}
	bin := buildTool(t)

	clean := exec.Command(bin, "./internal/vclock")
	clean.Dir = "../.."
	if code, out := exitCode(t, clean); code != 0 {
		t.Errorf("clean package: exit %d, want 0\n%s", code, out)
	}

	dirty := exec.Command(bin, "./internal/analysis/testdata/src/sensfix")
	dirty.Dir = "../.."
	code, out := exitCode(t, dirty)
	if code != 1 {
		t.Errorf("fixture package: exit %d, want 1\n%s", code, out)
	}
	if out == "" {
		t.Error("fixture package: expected diagnostics on stderr, got none")
	}
}

// TestVetTool drives the binary through go vet's -vettool protocol.
func TestVetTool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the lint binary under go vet; skipped in -short mode")
	}
	bin := buildTool(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./internal/vclock")
	cmd.Dir = "../.."
	if code, out := exitCode(t, cmd); code != 0 {
		t.Errorf("go vet -vettool: exit %d, want 0\n%s", code, out)
	}
}

// TestJSONOutput checks -json: diagnostics arrive as a parseable array on
// stdout, stably sorted, and the exit code still reflects the findings.
func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the lint binary; skipped in -short mode")
	}
	bin := buildTool(t)

	cmd := exec.Command(bin, "-json", "./internal/analysis/testdata/src/detfix")
	cmd.Dir = "../.."
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("-json over fixture: err %v, want exit 1\nstderr: %s", err, stderr.String())
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not a diagnostic array: %v\n%s", err, stdout.String())
	}
	if len(diags) == 0 {
		t.Fatal("-json over fixture: no diagnostics decoded")
	}
	for i, d := range diags {
		if d.File == "" || d.Line == 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("diagnostic %d has empty fields: %+v", i, d)
		}
		if i > 0 && (diags[i-1].File > d.File || (diags[i-1].File == d.File && diags[i-1].Line > d.Line)) {
			t.Errorf("diagnostics not sorted: %v before %v", diags[i-1], d)
		}
	}
}

// TestWaiverInventory checks -waivers: every //lint: directive is listed
// with its reason (JSON and text), and the mode exits 0 even where the
// analyzers would report findings.
func TestWaiverInventory(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the lint binary; skipped in -short mode")
	}
	bin := buildTool(t)

	cmd := exec.Command(bin, "-waivers", "-json", "./internal/analysis/testdata/src/sensfix")
	cmd.Dir = "../.."
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	if err := cmd.Run(); err != nil {
		t.Fatalf("-waivers -json: %v", err)
	}
	var ws []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Reason   string `json:"reason"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &ws); err != nil {
		t.Fatalf("-waivers -json output: %v\n%s", err, stdout.String())
	}
	if len(ws) != 2 {
		t.Fatalf("sensfix inventory: got %d waivers, want 2: %+v", len(ws), ws)
	}
	for _, w := range ws {
		if w.Analyzer != "sensaudit" || w.Reason == "" {
			t.Errorf("unexpected waiver record: %+v", w)
		}
	}

	text := exec.Command(bin, "-waivers", "./internal/analysis/testdata/src/waivefix")
	text.Dir = "../.."
	out, err := text.Output()
	if err != nil {
		t.Fatalf("-waivers text mode: %v", err)
	}
	if !strings.Contains(string(out), "(missing reason)") {
		t.Errorf("bare waiver not surfaced in inventory:\n%s", out)
	}
}

// TestTestsFlag checks -tests: the _test.go variant is analyzed (the
// dedupfix fixture plants a finding only reachable through its test file)
// and shared files are not double-reported.
func TestTestsFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the lint binary; skipped in -short mode")
	}
	bin := buildTool(t)

	cmd := exec.Command(bin, "-tests", "-json", "./internal/analysis/testdata/src/dedupfix")
	cmd.Dir = "../.."
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	err := cmd.Run()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("-tests over dedupfix: err %v, want exit 1", err)
	}
	var diags []struct {
		Message string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("-tests -json output: %v\n%s", err, stdout.String())
	}
	if len(diags) != 2 {
		t.Fatalf("dedupfix with -tests: got %d diagnostics, want 2 (deduped time.Now + test-only rand.Intn): %+v", len(diags), diags)
	}
}
