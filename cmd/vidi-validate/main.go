// vidi-validate is Vidi's offline trace validation tool (§4.2): it compares
// a reference trace against a validation trace and reports divergences in
// transaction counts, contents and happens-before ordering.
//
// Usage:
//
//	vidi-validate -ref sha.vidt -val sha-validation.vidt
//
// Exit status 0 when the traces match, 3 when divergences are found.
package main

import (
	"flag"
	"fmt"
	"os"

	"vidi/internal/core"
	"vidi/internal/trace"
)

func main() {
	refPath := flag.String("ref", "", "reference trace file")
	valPath := flag.String("val", "", "validation trace file")
	flag.Parse()
	if *refPath == "" || *valPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	ref, err := trace.LoadAuto(*refPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vidi-validate:", err)
		os.Exit(1)
	}
	val, err := trace.LoadAuto(*valPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vidi-validate:", err)
		os.Exit(1)
	}
	report, err := core.Compare(ref, val)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vidi-validate:", err)
		os.Exit(1)
	}
	fmt.Print(report)
	fmt.Println()
	if !report.Clean() {
		os.Exit(3)
	}
}
