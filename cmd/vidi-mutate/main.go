// vidi-mutate is Vidi's trace mutation tool (§4.2, §5.3): it reorders
// transaction end events in a recorded trace so that replay exercises
// protocol-legal interleavings that rarely occur naturally.
//
// Usage:
//
//	vidi-mutate -in pong.vidt -out mutated.vidt \
//	    -move pcim.W -n 0 -before pcim.AW -m 0
//
// moves the 0th end event of channel pcim.W strictly before the 0th end
// event of channel pcim.AW — the reordering that exposes the
// axi_atop_filter deadlock in the paper's testing case study.
package main

import (
	"flag"
	"fmt"
	"os"

	"vidi/internal/core"
	"vidi/internal/trace"
)

func main() {
	in := flag.String("in", "", "input trace file")
	out := flag.String("out", "", "output trace file")
	move := flag.String("move", "", "channel whose end event moves")
	n := flag.Uint64("n", 0, "end-event ordinal on the moved channel")
	before := flag.String("before", "", "channel of the target end event")
	m := flag.Uint64("m", 0, "end-event ordinal on the target channel")
	list := flag.Bool("list", false, "list the trace's channels and exit")
	flag.Parse()

	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	tr, err := trace.LoadAuto(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vidi-mutate:", err)
		os.Exit(1)
	}
	if *list {
		fmt.Print(tr.Summary())
		return
	}
	if *out == "" || *move == "" || *before == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := core.MoveEndBefore(tr, *move, *n, *before, *m); err != nil {
		fmt.Fprintln(os.Stderr, "vidi-mutate:", err)
		os.Exit(1)
	}
	if err := tr.Save(*out); err != nil {
		fmt.Fprintln(os.Stderr, "vidi-mutate:", err)
		os.Exit(1)
	}
	fmt.Printf("moved %s end #%d before %s end #%d → %s\n", *move, *n, *before, *m, *out)
}
