// vidi-record runs one of the bundled FPGA applications on the simulated
// F1 platform with Vidi recording enabled (configuration R2) and writes the
// reference trace to a file.
//
// Usage:
//
//	vidi-record -app sha -seed 42 -out sha.vidt
//	vidi-record -app sssp -metrics sssp.prom -trace-out sssp-trace.json
//
// The seed drives the environment's timing non-determinism; keep it to
// reproduce the same workload, and pass the same seed to vidi-replay (the
// platform's internal latency model derives from it, like deploying the
// same bitstream).
//
// -metrics and -trace-out arm the unified telemetry sink across the whole
// stack (scheduler, monitors, encoder, store, shell engines). The recorded
// trace is byte-identical with or without them; inspect the outputs with
// vidi-top or load the timeline in ui.perfetto.dev.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vidi/internal/apps"
	"vidi/internal/cliutil"
	"vidi/internal/eval"
)

func main() {
	app := flag.String("app", "", "application to run: "+strings.Join(apps.Names(), ", "))
	seed := flag.Int64("seed", 1, "environment timing seed")
	scale := flag.Int("scale", 1, "workload scale factor")
	out := flag.String("out", "", "trace output file (default <app>.vidt)")
	saf := flag.Bool("store-and-forward", false, "use the conservative store-and-forward monitor")
	compress := flag.Bool("compress", false, "write the trace DEFLATE-compressed")
	ifaces := flag.String("interfaces", "", "comma-separated interfaces to monitor (default: all), e.g. ocl,pcis,irq")
	tel := cliutil.AddTelemetryFlags()
	flag.Parse()

	if *app == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *out == "" {
		*out = *app + ".vidt"
	}
	sink := tel.Sink()
	rc := eval.RunConfig{
		App: *app, Scale: *scale, Seed: *seed, Cfg: eval.R2, StoreAndForward: *saf,
		Telemetry: sink,
	}
	if *ifaces != "" {
		rc.OnlyInterfaces = strings.Split(*ifaces, ",")
	}
	if err := tel.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "vidi-record:", err)
		os.Exit(1)
	}
	res, err := eval.Run(rc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vidi-record:", err)
		os.Exit(1)
	}
	if res.CheckErr != nil {
		fmt.Fprintln(os.Stderr, "vidi-record: golden check FAILED:", res.CheckErr)
		os.Exit(1)
	}
	save := res.Trace.Save
	if *compress {
		save = res.Trace.SaveCompressed
	}
	if err := save(*out); err != nil {
		fmt.Fprintln(os.Stderr, "vidi-record:", err)
		os.Exit(1)
	}
	fmt.Printf("recorded %s: %d cycles, %d transactions, %d trace bytes → %s\n",
		*app, res.Cycles, res.Trace.TotalTransactions(), res.Trace.SizeBytes(), *out)
	fmt.Print(res.Trace.Summary())
	if err := tel.Finish(sink, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vidi-record:", err)
		os.Exit(1)
	}
}
