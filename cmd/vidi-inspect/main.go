// vidi-inspect examines a recorded trace: channel summary, performance
// profile (the record/replay profiling use case the paper motivates), and
// per-channel transaction dumps.
//
// Usage:
//
//	vidi-inspect -trace sha.vidt                 # summary + profile
//	vidi-inspect -trace sha.vidt -dump pcis.W -limit 10
package main

import (
	"flag"
	"fmt"
	"os"

	"vidi/internal/profile"
	"vidi/internal/trace"
)

func main() {
	tracePath := flag.String("trace", "", "trace file to inspect")
	dump := flag.String("dump", "", "dump the transactions of this channel")
	limit := flag.Int("limit", 20, "maximum transactions to dump")
	noProfile := flag.Bool("no-profile", false, "skip the performance profile")
	flag.Parse()

	if *tracePath == "" {
		flag.Usage()
		os.Exit(2)
	}
	tr, err := trace.LoadAuto(*tracePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vidi-inspect:", err)
		os.Exit(1)
	}
	fmt.Print(tr.Summary())
	if !*noProfile {
		fmt.Println()
		fmt.Print(profile.Analyze(tr).String())
	}
	if *dump != "" {
		ci := tr.Meta.ChannelByName(*dump)
		if ci < 0 {
			fmt.Fprintf(os.Stderr, "vidi-inspect: no channel %q in trace\n", *dump)
			os.Exit(1)
		}
		fmt.Printf("\ntransactions on %s (%s, width %d):\n",
			*dump, tr.Meta.Channels[ci].Dir, tr.Meta.Channels[ci].Width)
		for i, tx := range tr.Transactions(ci) {
			if i >= *limit {
				fmt.Printf("  ... (%d more)\n", len(tr.Transactions(ci))-i)
				break
			}
			content := "(content not recorded)"
			if tx.Content != nil {
				content = fmt.Sprintf("% x", tx.Content)
				if len(content) > 100 {
					content = content[:100] + "…"
				}
			}
			fmt.Printf("  #%-4d start@pkt %-6d end@pkt %-6d %s\n", tx.Ordinal, tx.StartPacket, tx.EndPacket, content)
		}
	}
}
