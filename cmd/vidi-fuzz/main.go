// vidi-fuzz is the differential conformance fuzzer's CLI. It generates
// random-but-valid shell systems from seeds — most carrying a compiled
// dataflow graph (internal/design) — runs each through the oracle stack
// (kernel trace+VCD equality, record→replay exactness, protocol
// cleanliness, end-to-end echo or golden-model conformance, §5.3 mutation
// probe), verifies the checked-in regression corpus, and shrinks new
// failures to minimal reproducers.
//
// Usage:
//
//	vidi-fuzz -seeds 200                      # fuzz 200 fresh seeds (must run clean on main)
//	vidi-fuzz -duration 30s                   # fuzz until the time budget is spent
//	vidi-fuzz -corpus internal/fuzz/corpus    # also re-verify the regression corpus
//	vidi-fuzz -seeds 50 -shrink               # shrink any failing seed before reporting
//	vidi-fuzz -seeds 100 -bugs -shrink        # bug-hunting mode: inject buggy components
//	vidi-fuzz -seeds 100 -bugs -trace-out failures.json   # Perfetto timeline per failing seed
//	vidi-fuzz -guided -seeds 200              # coverage-guided search from the frontier
//	vidi-fuzz -guided -seeds 60 -min-new 1 -coverage-out BENCH_coverage.json
//
// Exit status is non-zero when a fresh seed fails in clean mode or a corpus
// entry stops reproducing its recorded failure. In -bugs mode failures are
// the goal and do not affect the exit status; with -shrink and -corpus set,
// shrunk finds are written to the corpus directory as found-<seed>.json.
//
// -guided switches the fresh-seed loop to coverage-guided search: each run's
// scheduler telemetry, FIFO occupancy and graph topology are quantized into
// a coverage vector, behaviorally novel scenarios form a frontier, and three
// of every four runs mutate a frontier member instead of drawing a fresh
// seed. The run report includes the frontier growth curve and a
// generated-graph topology table; the run fails if any of the five topology
// classes (fork, deal, loop, clockdiv, varlat) was never exercised, if any
// oracle failed, or if fewer than -min-new novel vectors were found.
// -coverage-out writes the report as JSON (the CI coverage artifact).
//
// -trace-out re-runs every failing fresh seed with the span tracer armed
// and writes a trace_event JSON timeline per seed (the seed number is
// suffixed to the path before its extension). A deadlocked seed still gets
// its partial timeline — that is the point: load it in ui.perfetto.dev and
// see which track stopped making progress.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"vidi/internal/fuzz"
)

// perSeedPath inserts the seed before the path's extension:
// failures.json + 17 → failures-17.json.
func perSeedPath(path string, seed int64) string {
	ext := filepath.Ext(path)
	return fmt.Sprintf("%s-%d%s", strings.TrimSuffix(path, ext), seed, ext)
}

//lint:detaudit wall-clock reads bound fuzzing campaign duration and stamp progress lines on stdout; every fuzzed design itself runs from explicit seeds
func main() {
	seeds := flag.Int("seeds", 50, "number of fresh seeds to fuzz")
	seedBase := flag.Int64("seed", 1, "first seed value")
	duration := flag.Duration("duration", 0, "fuzz until this much time elapsed (overrides -seeds)")
	corpusDir := flag.String("corpus", "", "regression corpus directory to verify (and extend with -shrink -bugs)")
	shrink := flag.Bool("shrink", false, "shrink failing seeds to minimal reproducers")
	bugs := flag.Bool("bugs", false, "inject buggy case-study components (bug-hunting mode)")
	traceOut := flag.String("trace-out", "", "write a Perfetto timeline per failing seed (seed suffixed to the path)")
	guided := flag.Bool("guided", false, "coverage-guided search: mutate behaviorally novel scenarios instead of fresh seeds only")
	minNew := flag.Int("min-new", 1, "with -guided: minimum novel coverage vectors required for a passing run")
	coverageOut := flag.String("coverage-out", "", "with -guided: write the coverage report JSON to this path")
	verbose := flag.Bool("v", false, "print every seed's verdict")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "vidi-fuzz:", err)
		os.Exit(1)
	}
	bad := 0

	// Regression corpus: every entry must still reproduce its recorded
	// failure — losing one means an oracle or a detector regressed.
	if *corpusDir != "" {
		entries, err := fuzz.LoadCorpus(*corpusDir)
		if err != nil {
			fail(err)
		}
		for _, e := range entries {
			out := fuzz.RunSeed(&e.Scenario)
			switch {
			case out.Failure == nil:
				bad++
				fmt.Printf("corpus %-12s LOST: no longer fails (want %s)\n", e.Name, e.Kind)
			case out.Failure.Kind != e.Kind:
				bad++
				fmt.Printf("corpus %-12s CHANGED: fails with %s, want %s\n", e.Name, out.Failure.Kind, e.Kind)
			default:
				fmt.Printf("corpus %-12s ok: reproduces %s (size %d, shrunk from %d)\n",
					e.Name, e.Kind, e.Scenario.Size(), e.OriginSize)
			}
		}
	}

	// Coverage-guided search: the frontier loop replaces the fresh-seed loop.
	if *guided {
		start := time.Now()
		cfg := fuzz.GuidedConfig{Runs: *seeds, SeedBase: *seedBase, Gen: fuzz.DefaultGenOptions()}
		if *verbose {
			cfg.Progress = func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
		}
		rep, err := fuzz.RunGuided(cfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("guided: %d runs (%d fresh, %d mutated) in %s: %d failing, %d novel coverage vectors\n",
			rep.Runs, rep.Fresh, rep.Mutated, time.Since(start).Round(time.Millisecond),
			rep.Failing, rep.NewVectors)
		if n := len(rep.Growth); n > 0 {
			curve := make([]int, 0, 11)
			for i := 0; i < n; i += (n + 9) / 10 {
				curve = append(curve, rep.Growth[i])
			}
			curve = append(curve, rep.Growth[n-1])
			fmt.Printf("frontier growth: %v\n", curve)
		}
		t := rep.Topology
		fmt.Printf("generated-graph topology (scenarios exercising each class):\n")
		fmt.Printf("  fork %-4d deal %-4d loop %-4d clockdiv %-4d varlat %-4d graphless %d/%d\n",
			t.Forks, t.Deals, t.Loops, t.ClockDivs, t.VarLat, t.Graphless, t.Scenarios)
		for _, f := range rep.Failures {
			fmt.Printf("  FAIL %s\n", f)
		}
		if *coverageOut != "" {
			js, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*coverageOut, append(js, '\n'), 0o644); err != nil {
				fail(err)
			}
			fmt.Printf("coverage report written to %s\n", *coverageOut)
		}
		if m := t.Missing(); len(m) > 0 {
			fmt.Printf("guided: topology classes never exercised: %s\n", strings.Join(m, ", "))
			bad++
		}
		if rep.NewVectors < *minNew {
			fmt.Printf("guided: %d novel vectors < required %d\n", rep.NewVectors, *minNew)
			bad++
		}
		bad += rep.Failing
		if bad > 0 {
			os.Exit(1)
		}
		return
	}

	// Fresh seeds.
	start := time.Now()
	ran, found := 0, 0
	genOpt := fuzz.DefaultGenOptions()
	genOpt.InjectBugs = *bugs
	for i := 0; ; i++ {
		if *duration > 0 {
			if time.Since(start) > *duration {
				break
			}
		} else if i >= *seeds {
			break
		}
		seed := *seedBase + int64(i)
		sc, err := fuzz.Generate(seed, genOpt)
		if err != nil {
			fail(err)
		}
		out := fuzz.RunSeed(sc)
		ran++
		if out.Failure == nil {
			if *verbose {
				fmt.Printf("seed %-6d ok (%d cycles)\n", seed, out.Cycles)
			}
			continue
		}
		found++
		if !*bugs {
			bad++
		}
		fmt.Printf("seed %-6d FAIL %v\n", seed, out.Failure)
		if *traceOut != "" {
			path := perSeedPath(*traceOut, seed)
			f, err := os.Create(path)
			if err != nil {
				fail(err)
			}
			cycles, terr := fuzz.TraceSeed(sc, f)
			if cerr := f.Close(); cerr != nil {
				fail(cerr)
			}
			if terr != nil {
				// Expected for run-error seeds: the partial timeline is the
				// diagnostic artifact, the re-run's error is informational.
				fmt.Printf("  timeline written to %s (%d cycles; traced re-run: %v)\n", path, cycles, terr)
			} else {
				fmt.Printf("  timeline written to %s (%d cycles)\n", path, cycles)
			}
		}
		if *shrink {
			shrunk, runs := fuzz.Shrink(sc, out.Failure.Kind, nil)
			js, _ := shrunk.MarshalIndent()
			fmt.Printf("  shrunk %d → %d in %d runs:\n%s\n", sc.Size(), shrunk.Size(), runs, js)
			if *corpusDir != "" {
				e := &fuzz.CorpusEntry{
					Name:       fmt.Sprintf("found-%d", seed),
					Kind:       out.Failure.Kind,
					OriginSeed: seed,
					OriginSize: sc.Size(),
					Scenario:   *shrunk,
				}
				if err := fuzz.WriteCorpus(*corpusDir, e); err != nil {
					fail(err)
				}
				fmt.Printf("  saved %s/%s.json\n", *corpusDir, e.Name)
			}
		}
	}

	fmt.Printf("fuzzed %d seeds in %s: %d failing\n", ran, time.Since(start).Round(time.Millisecond), found)
	if bad > 0 {
		os.Exit(1)
	}
}
