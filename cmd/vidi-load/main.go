// vidi-load is the open-loop load harness for vidi-serve: sessions arrive
// on a seeded Poisson process and execute tenant workflows (record,
// replay, compare, degraded upload) against a live service — or a
// self-hosted one — while every request carries a deterministic
// X-Vidi-Request-Id. The run emits a JSON report (BENCH_serve.json) with
// per-endpoint HDR latency quantiles, throughput, an error budget,
// divergence accounting, and the correlation between the server's
// /v1/slow exemplars and the client's own request records.
//
// Usage:
//
//	vidi-load -sessions 1200 -min-concurrent 1000 -out BENCH_serve.json
//	vidi-load -url http://host:9412 -sessions 500 -rate 200
//
// Exit status is non-zero on session failures, silent divergences, a
// spent error budget, or a peak concurrency under -min-peak — so CI can
// gate on the smoke run directly. Render the report with
// `vidi-top -load BENCH_serve.json`.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"vidi/internal/serve"
)

func main() {
	url := flag.String("url", "", "target a live vidi-serve ('' self-hosts one for the run)")
	root := flag.String("root", "", "self-hosted store root ('' = temp dir, removed after)")
	sessions := flag.Int("sessions", 64, "total sessions to run")
	minConcurrent := flag.Int("min-concurrent", 0, "rendezvous barrier: hold sessions until this many are active at once")
	rate := flag.Float64("rate", 500, "mean Poisson arrival rate, sessions/second")
	seed := flag.Int64("seed", 42, "seed for arrivals, mix, and request ids")
	app := flag.String("app", "dma-irq", "recorded workload application")
	scale := flag.Int("scale", 1, "workload scale factor")
	segFrames := flag.Int("segment-frames", 8, "frames per uploaded segment")
	mix := flag.String("mix", "", "session mix weights record/replay/compare/degraded, e.g. 6/2/1/1")
	out := flag.String("out", "", "write the JSON report here ('' = stdout only)")
	minPeak := flag.Int("min-peak", 0, "fail unless peak concurrency reaches this")
	maxErrRatio := flag.Float64("max-error-ratio", 0, "fail when the error budget ratio exceeds this")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "vidi-load:", err)
		os.Exit(1)
	}

	opts := serve.LoadOptions{
		URL:           *url,
		Root:          *root,
		Sessions:      *sessions,
		MinConcurrent: *minConcurrent,
		Rate:          *rate,
		Seed:          *seed,
		App:           *app,
		Scale:         *scale,
		SegmentFrames: *segFrames,
	}
	if *mix != "" {
		m, err := parseMix(*mix)
		if err != nil {
			fail(err)
		}
		opts.Mix = m
	}

	rep, err := serve.RunLoad(context.Background(), opts)
	if err != nil {
		fail(err)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("vidi-load: report written to %s\n", *out)
	} else {
		os.Stdout.Write(data)
	}
	printSummary(rep)

	var failures []string
	if rep.FailedSessions > 0 {
		failures = append(failures, fmt.Sprintf("%d sessions failed", rep.FailedSessions))
	}
	if rep.Divergences > 0 {
		failures = append(failures, fmt.Sprintf("%d silent divergences", rep.Divergences))
	}
	if rep.ErrorRatio > *maxErrRatio {
		failures = append(failures, fmt.Sprintf("error ratio %.4f exceeds %.4f (%d of %d requests)",
			rep.ErrorRatio, *maxErrRatio, rep.ErrorCount, rep.Requests))
	}
	if *minPeak > 0 && rep.PeakConcurrent < *minPeak {
		failures = append(failures, fmt.Sprintf("peak concurrency %d under the %d floor", rep.PeakConcurrent, *minPeak))
	}
	if rep.SlowChecked > 0 && rep.SlowCorrelated == 0 {
		failures = append(failures, "no server slow-request exemplar traced back to a client record")
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "FAIL:", f)
		}
		os.Exit(1)
	}
	fmt.Printf("vidi-load: %d sessions ok, peak %d concurrent, %d requests, 0 divergences\n",
		rep.Sessions, rep.PeakConcurrent, rep.Requests)
}

// parseMix reads "record/replay/compare/degraded" weights.
func parseMix(s string) (serve.LoadMix, error) {
	parts := strings.Split(s, "/")
	if len(parts) != 4 {
		return serve.LoadMix{}, fmt.Errorf("mix %q: want four /-separated weights (record/replay/compare/degraded)", s)
	}
	w := make([]int, 4)
	total := 0
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 0 {
			return serve.LoadMix{}, fmt.Errorf("mix %q: bad weight %q", s, p)
		}
		w[i] = n
		total += n
	}
	if total == 0 {
		return serve.LoadMix{}, fmt.Errorf("mix %q: all weights zero", s)
	}
	return serve.LoadMix{Record: w[0], Replay: w[1], Compare: w[2], Degraded: w[3]}, nil
}

// printSummary writes the human-readable digest after the JSON artifact.
func printSummary(rep *serve.LoadReport) {
	fmt.Printf("\n== vidi-load: %d sessions @ seed %d ==\n", rep.Sessions, rep.Seed)
	fmt.Printf("peak concurrent %d  duration %.0fms  %d requests (%.0f/s)  errors %d (%.4f)\n",
		rep.PeakConcurrent, rep.DurationMS, rep.Requests, rep.RequestsPerSec,
		rep.ErrorCount, rep.ErrorRatio)
	fmt.Printf("recorded %d  replayed %d  compared %d  degraded %d  divergences %d  gap frames %d\n",
		rep.Recorded, rep.Replayed, rep.Compared, rep.Degraded, rep.Divergences, rep.GapFrames)
	fmt.Printf("slow exemplars correlated %d/%d  compression ratio %.2f\n\n",
		rep.SlowCorrelated, rep.SlowChecked, rep.CompressionRatio)
	fmt.Printf("%-14s %9s %7s %9s %9s %9s %9s %9s\n",
		"endpoint", "count", "errors", "p50 ms", "p90 ms", "p95 ms", "p99 ms", "p99.9 ms")
	for _, e := range rep.Endpoints {
		fmt.Printf("%-14s %9d %7d %9.2f %9.2f %9.2f %9.2f %9.2f\n",
			e.Endpoint, e.Count, e.Errors, e.P50MS, e.P90MS, e.P95MS, e.P99MS, e.P999MS)
	}
}
