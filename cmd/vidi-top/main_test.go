package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vidi/internal/serve"
)

func drain(t *testing.T, mode string, rows []row) []string {
	t.Helper()
	prev := sortMode
	sortMode = mode
	defer func() { sortMode = prev }()
	sortRows(rows)
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = r.key
	}
	return keys
}

// TestSortRowsStableOnTies: equal-valued rows must keep a deterministic
// name order instead of whatever map-iteration order produced them, so
// successive -watch frames don't shuffle ties.
func TestSortRowsStableOnTies(t *testing.T) {
	rows := []row{
		{key: "gamma", cols: []float64{5}},
		{key: "alpha", cols: []float64{5}},
		{key: "beta", cols: []float64{9}},
		{key: "delta", cols: []float64{5}},
	}
	got := drain(t, sortByValue, rows)
	want := []string{"beta", "alpha", "delta", "gamma"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("value sort order = %v, want %v", got, want)
		}
	}
}

// TestSortRowsByName: -sort name ignores values entirely.
func TestSortRowsByName(t *testing.T) {
	rows := []row{
		{key: "zeta", cols: []float64{100}},
		{key: "alpha", cols: []float64{1}},
		{key: "mid", cols: []float64{50}},
	}
	got := drain(t, sortByName, rows)
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("name sort order = %v, want %v", got, want)
		}
	}
}

// TestRenderLoadReport: the -load panel renders a report file end to end.
func TestRenderLoadReport(t *testing.T) {
	rep := serve.LoadReport{
		Seed:             42,
		URL:              "http://127.0.0.1:9412",
		Sessions:         48,
		PeakConcurrent:   20,
		DurationMS:       1234,
		Requests:         500,
		RequestsPerSec:   405.2,
		Recorded:         30,
		Replayed:         10,
		Compared:         5,
		Degraded:         3,
		SlowChecked:      8,
		SlowCorrelated:   8,
		CompressionRatio: 2.5,
		Endpoints: []serve.EndpointStats{
			{Endpoint: "commit", Count: 48, P50MS: 4, P99MS: 20},
			{Endpoint: "put_segment", Count: 300, P50MS: 1, P99MS: 9},
		},
		SlowestRequests: []serve.SlowRequest{
			{RequestID: "load-42-17", Endpoint: "put_segment", Status: 200, DurationMS: 35.5},
		},
	}
	data, err := json.Marshal(&rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := renderLoad(&sb, path, 10); err != nil {
		t.Fatalf("renderLoad: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"put_segment", "commit", "load-42-17",
		"peak concurrent 20", "correlated 8/8", "compression ratio 2.50",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q:\n%s", want, out)
		}
	}
	// put_segment has the larger count, so under value order it leads.
	if strings.Index(out, "put_segment") > strings.Index(out, "commit") {
		t.Fatalf("value sort should list put_segment before commit:\n%s", out)
	}

	if err := renderLoad(&sb, filepath.Join(t.TempDir(), "missing.json"), 10); err == nil {
		t.Fatal("renderLoad on a missing file should error")
	}
}
