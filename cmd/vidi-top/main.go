// vidi-top is the run inspector of the unified telemetry layer: it renders
// sorted end-of-run tables — per-partition eval-time share, hottest
// monitored channels, AXI engine traffic, stall/retry totals — from a
// metrics snapshot, or runs an instrumented recording itself, or
// validates and summarises a Perfetto timeline.
//
// Usage:
//
//	vidi-top -metrics snap.json       # inspect a snapshot (vidi-record/-bench -metrics)
//	vidi-top -app sssp -seed 42       # run an instrumented R2 recording, then inspect it
//	vidi-top -trace timeline.json     # validate + summarise a trace_event timeline
//	vidi-top -url http://host:9412    # scrape a live vidi-serve /metrics and inspect it
//	vidi-top -url ... -watch 2s       # re-scrape and re-render on an interval
//	vidi-top -load BENCH_serve.json   # render a vidi-load report (add -url for live quantiles)
//
// File snapshots must be the JSON encoding (-metrics with a .json path);
// -url reads the Prometheus text form a live /metrics endpoint serves.
// Ranked tables order by value (descending) by default; -sort name orders
// them by row name instead, and equal-valued rows always keep a stable
// name order either way.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"vidi/internal/apps"
	"vidi/internal/eval"
	"vidi/internal/serve"
	"vidi/internal/telemetry"
)

func main() {
	metricsPath := flag.String("metrics", "", "metrics snapshot JSON to inspect")
	tracePath := flag.String("trace", "", "trace_event timeline JSON to validate and summarise")
	app := flag.String("app", "", "run one instrumented R2 recording of this app and inspect it: "+strings.Join(apps.Names(), ", "))
	url := flag.String("url", "", "scrape a live /metrics endpoint (Prometheus text) and inspect it")
	watch := flag.Duration("watch", 0, "with -url: re-scrape and re-render on this interval (0 = once)")
	loadPath := flag.String("load", "", "render a vidi-load report (BENCH_serve.json)")
	seed := flag.Int64("seed", 1, "environment timing seed (with -app)")
	scale := flag.Int("scale", 1, "workload scale factor (with -app)")
	topN := flag.Int("top", 8, "rows shown per table")
	sortFlag := flag.String("sort", "value", "ranked-table row order: value|name")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "vidi-top:", err)
		os.Exit(1)
	}
	switch *sortFlag {
	case sortByValue, sortByName:
	default:
		fail(fmt.Errorf("unknown -sort %q (want value or name)", *sortFlag))
	}
	sortMode = *sortFlag
	switch {
	case *loadPath != "":
		if err := renderLoad(os.Stdout, *loadPath, *topN); err != nil {
			fail(err)
		}
		if *url != "" {
			fmt.Println()
			if err := watchURL(os.Stdout, *url, *watch, *topN); err != nil {
				fail(err)
			}
		}
	case *url != "":
		if err := watchURL(os.Stdout, *url, *watch, *topN); err != nil {
			fail(err)
		}
	case *metricsPath != "":
		f, err := os.Open(*metricsPath)
		if err != nil {
			fail(err)
		}
		snap, err := telemetry.ReadSnapshot(f)
		f.Close()
		if err != nil {
			fail(fmt.Errorf("%s: %w (vidi-top reads the .json snapshot form, not Prometheus text)", *metricsPath, err))
		}
		render(os.Stdout, snap, *topN)
	case *app != "":
		sink := telemetry.New()
		res, err := eval.Run(eval.RunConfig{App: *app, Scale: *scale, Seed: *seed, Cfg: eval.R2, Telemetry: sink})
		if err != nil {
			fail(err)
		}
		if res.CheckErr != nil {
			fail(fmt.Errorf("%s: golden check failed: %w", *app, res.CheckErr))
		}
		fmt.Printf("%s: %d cycles recorded, %d transactions\n\n", *app, res.Cycles, res.Trace.TotalTransactions())
		render(os.Stdout, sink.Gather(), *topN)
	case *tracePath != "":
		if err := summariseTrace(os.Stdout, *tracePath, *topN); err != nil {
			fail(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// Ranked-table sort modes (-sort flag).
const (
	sortByValue = "value"
	sortByName  = "name"
)

// sortMode is the process-wide -sort selection (value by default).
var sortMode = sortByValue

// row is one line of a sorted table: a display key plus named columns.
type row struct {
	key  string
	cols []float64
}

// sig canonicalises a label set for cross-family series matching and
// display: sorted k=v pairs joined by commas.
func sig(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + labels[k]
	}
	return strings.Join(parts, ",")
}

// values indexes one family's series by label signature (empty map when the
// family is absent).
func values(snap *telemetry.Snapshot, family string) map[string]float64 {
	out := map[string]float64{}
	f := snap.Family(family)
	if f == nil {
		return out
	}
	for _, se := range f.Series {
		out[sig(se.Labels)] += se.Value
	}
	return out
}

// render writes the inspection tables. A snapshot scraped from vidi-serve
// gets the service table; the simulation tables render only when their
// families are present, so a pure service scrape stays compact.
func render(w io.Writer, snap *telemetry.Snapshot, topN int) {
	serve := renderService(w, snap)
	if serve && snap.Family("vidi_sched_cycles") == nil {
		return
	}
	renderOverview(w, snap)
	renderPartitions(w, snap, topN)
	renderChannels(w, snap, topN)
	renderEngines(w, snap, topN)
	renderStalls(w, snap)
}

// renderService shows the vidi-serve families when the snapshot came from
// a live service scrape; simulation snapshots don't carry them and skip
// the section entirely.
func renderService(w io.Writer, snap *telemetry.Snapshot) bool {
	found := false
	for _, f := range snap.Families {
		if strings.HasPrefix(f.Name, "vidi_serve_") {
			found = true
			break
		}
	}
	if !found {
		return false
	}
	fmt.Fprintf(w, "== vidi-serve ==\n")
	fmt.Fprintf(w, "sessions open %.0f  breaker %.1f  jobs queued %.0f\n",
		snap.Total("vidi_serve_sessions_open"), snap.Total("vidi_serve_breaker_state"),
		snap.Total("vidi_serve_jobs_queued"))
	kv := func(label string, v float64) {
		if v != 0 {
			fmt.Fprintf(w, "%-32s %10.0f\n", label, v)
		}
	}
	for _, f := range snap.Families {
		if !strings.HasPrefix(f.Name, "vidi_serve_") || !strings.HasSuffix(f.Name, "_total") {
			continue
		}
		label := strings.TrimSuffix(strings.TrimPrefix(f.Name, "vidi_serve_"), "_total")
		if f.Name == "vidi_serve_http_responses_total" {
			for _, e := range sortedKVList(values(snap, f.Name)) {
				kv("http responses {"+e.key+"}", e.val)
			}
			continue
		}
		kv(strings.ReplaceAll(label, "_", " "), snap.Total(f.Name))
	}
	fmt.Fprintln(w)
	renderLatency(w, snap)
	return true
}

// renderLatency shows the live per-endpoint request-latency quantiles a
// vidi-serve scrape carries (the summary family vidi-load also reports
// from the client side).
func renderLatency(w io.Writer, snap *telemetry.Snapshot) {
	f := snap.Family("vidi_serve_request_duration_seconds")
	if f == nil {
		return
	}
	fmt.Fprintf(w, "== request latency by endpoint ==\n")
	fmt.Fprintf(w, "%-14s %9s %9s %9s %9s %9s %9s\n",
		"endpoint", "count", "mean ms", "p50 ms", "p90 ms", "p95 ms", "p99 ms")
	type lrow struct {
		name                     string
		count                    uint64
		mean, p50, p90, p95, p99 float64
	}
	rows := make([]lrow, 0, len(f.Series))
	for _, se := range f.Series {
		if se.Count == 0 {
			continue
		}
		toMS := func(p float64) float64 { return se.QuantileValue(p) * 1000 }
		rows = append(rows, lrow{
			name:  se.Labels["endpoint"],
			count: se.Count,
			mean:  se.Sum / float64(se.Count) * 1000,
			p50:   toMS(0.5), p90: toMS(0.9), p95: toMS(0.95), p99: toMS(0.99),
		})
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if sortMode == sortByValue && rows[i].count != rows[j].count {
			return rows[i].count > rows[j].count
		}
		return rows[i].name < rows[j].name
	})
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %9d %9.2f %9.2f %9.2f %9.2f %9.2f\n",
			r.name, r.count, r.mean, r.p50, r.p90, r.p95, r.p99)
	}
	fmt.Fprintln(w)
}

// renderLoad renders a vidi-load report (BENCH_serve.json): the run
// digest, the per-endpoint latency table, and the client's slowest
// requests with their ids for cross-referencing against /v1/slow.
func renderLoad(w io.Writer, path string, topN int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep serve.LoadReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("%s: not a vidi-load report: %w", path, err)
	}
	fmt.Fprintf(w, "== vidi-load report: %s ==\n", path)
	fmt.Fprintf(w, "seed %d  url %s  sessions %d  peak concurrent %d  duration %.0fms\n",
		rep.Seed, rep.URL, rep.Sessions, rep.PeakConcurrent, rep.DurationMS)
	fmt.Fprintf(w, "requests %d (%.0f/s)  errors %d (ratio %.4f)  failed sessions %d\n",
		rep.Requests, rep.RequestsPerSec, rep.ErrorCount, rep.ErrorRatio, rep.FailedSessions)
	fmt.Fprintf(w, "recorded %d  replayed %d  compared %d  degraded %d  divergences %d  gap frames %d\n",
		rep.Recorded, rep.Replayed, rep.Compared, rep.Degraded, rep.Divergences, rep.GapFrames)
	fmt.Fprintf(w, "slow exemplars correlated %d/%d  compression ratio %.2f\n\n",
		rep.SlowCorrelated, rep.SlowChecked, rep.CompressionRatio)

	fmt.Fprintf(w, "%-14s %9s %7s %9s %9s %9s %9s %9s\n",
		"endpoint", "count", "errors", "p50 ms", "p90 ms", "p95 ms", "p99 ms", "p99.9 ms")
	eps := append([]serve.EndpointStats(nil), rep.Endpoints...)
	sort.SliceStable(eps, func(i, j int) bool {
		if sortMode == sortByValue && eps[i].Count != eps[j].Count {
			return eps[i].Count > eps[j].Count
		}
		return eps[i].Endpoint < eps[j].Endpoint
	})
	for _, e := range eps {
		fmt.Fprintf(w, "%-14s %9d %7d %9.2f %9.2f %9.2f %9.2f %9.2f\n",
			e.Endpoint, e.Count, e.Errors, e.P50MS, e.P90MS, e.P95MS, e.P99MS, e.P999MS)
	}
	if len(rep.SlowestRequests) > 0 {
		fmt.Fprintf(w, "\n%-20s %-14s %7s %10s\n", "slowest request id", "endpoint", "status", "ms")
		for i, s := range rep.SlowestRequests {
			if i >= topN {
				fmt.Fprintf(w, "(%d more)\n", len(rep.SlowestRequests)-topN)
				break
			}
			fmt.Fprintf(w, "%-20s %-14s %7d %10.2f\n", s.RequestID, s.Endpoint, s.Status, s.DurationMS)
		}
	}
	for _, e := range rep.Errors {
		fmt.Fprintf(w, "error: %s\n", e)
	}
	return nil
}

func renderOverview(w io.Writer, snap *telemetry.Snapshot) {
	fmt.Fprintf(w, "== run overview ==\n")
	fmt.Fprintf(w, "cycles %.0f  partitions %.0f  workers %.0f  modules %.0f  evals %.0f  waves %.0f\n\n",
		snap.Total("vidi_sched_cycles"), snap.Total("vidi_sched_partitions"),
		snap.Total("vidi_sched_workers"), snap.Total("vidi_sched_modules"),
		snap.Total("vidi_sched_evals_total"), snap.Total("vidi_sched_waves_total"))
}

// renderPartitions is the scheduler heat table: where the eval wall-clock
// went, partition by partition.
func renderPartitions(w io.Writer, snap *telemetry.Snapshot, topN int) {
	fmt.Fprintf(w, "== scheduler partitions by eval time ==\n")
	ns := values(snap, "vidi_sched_eval_ns_total")
	if len(ns) == 0 {
		fmt.Fprintf(w, "(no scheduler series — legacy kernel run, or nothing gathered)\n\n")
		return
	}
	evals := values(snap, "vidi_sched_evals_total")
	skipped := values(snap, "vidi_sched_skipped_evals_total")
	busy := values(snap, "vidi_sched_busy_cycles_total")
	wakes := values(snap, "vidi_sched_wakeups_total")
	var total float64
	rows := make([]row, 0, len(ns))
	for k, v := range ns {
		total += v
		rows = append(rows, row{key: k, cols: []float64{v, 0, evals[k], skipped[k], busy[k], wakes[k]}})
	}
	sortRows(rows)
	fmt.Fprintf(w, "%-28s %9s %7s %10s %10s %10s %10s\n",
		"partition", "eval ms", "share", "evals", "skipped", "busy cyc", "wakeups")
	for i, r := range rows {
		if i >= topN {
			fmt.Fprintf(w, "(%d more)\n", len(rows)-topN)
			break
		}
		share := 0.0
		if total > 0 {
			share = 100 * r.cols[0] / total
		}
		fmt.Fprintf(w, "%-28s %9.2f %6.1f%% %10.0f %10.0f %10.0f %10.0f\n",
			r.key, r.cols[0]/1e6, share, r.cols[2], r.cols[3], r.cols[4], r.cols[5])
	}
	fmt.Fprintln(w)
}

// renderChannels ranks the monitored boundary channels by observed events.
func renderChannels(w io.Writer, snap *telemetry.Snapshot, topN int) {
	fmt.Fprintf(w, "== hottest monitored channels ==\n")
	observed := values(snap, "vidi_monitor_observed_events_total")
	if len(observed) == 0 {
		fmt.Fprintf(w, "(no monitor series — transparent run, or nothing gathered)\n\n")
		return
	}
	recorded := values(snap, "vidi_monitor_recorded_events_total")
	gapped := values(snap, "vidi_monitor_gapped_ends_total")
	rows := make([]row, 0, len(observed))
	for k, v := range observed {
		rows = append(rows, row{key: k, cols: []float64{v, recorded[k], gapped[k]}})
	}
	sortRows(rows)
	fmt.Fprintf(w, "%-32s %10s %10s %8s\n", "channel", "observed", "recorded", "gapped")
	for i, r := range rows {
		if i >= topN {
			fmt.Fprintf(w, "(%d more)\n", len(rows)-topN)
			break
		}
		fmt.Fprintf(w, "%-32s %10.0f %10.0f %8.0f\n", r.key, r.cols[0], r.cols[1], r.cols[2])
	}
	fmt.Fprintln(w)
}

// renderEngines ranks the environment-side AXI engines by beats moved.
func renderEngines(w io.Writer, snap *telemetry.Snapshot, topN int) {
	fmt.Fprintf(w, "== AXI engine traffic ==\n")
	beats := values(snap, "vidi_axi_beats_total")
	if len(beats) == 0 {
		fmt.Fprintf(w, "(no engine series gathered)\n\n")
		return
	}
	bursts := values(snap, "vidi_axi_bursts_total")
	rows := make([]row, 0, len(beats))
	for k, v := range beats {
		rows = append(rows, row{key: k, cols: []float64{v, bursts[k]}})
	}
	sortRows(rows)
	fmt.Fprintf(w, "%-32s %10s %10s\n", "engine", "beats", "bursts")
	for i, r := range rows {
		if i >= topN {
			fmt.Fprintf(w, "(%d more)\n", len(rows)-topN)
			break
		}
		fmt.Fprintf(w, "%-32s %10.0f %10.0f\n", r.key, r.cols[0], r.cols[1])
	}
	fmt.Fprintln(w)
}

// renderStalls totals everything that slowed or degraded the run.
func renderStalls(w io.Writer, snap *telemetry.Snapshot) {
	fmt.Fprintf(w, "== stalls, retries, degradation ==\n")
	kv := func(label string, v float64) { fmt.Fprintf(w, "%-32s %10.0f\n", label, v) }
	kv("encoder denials", snap.Total("vidi_encoder_denials_total"))
	kv("encoder gaps", snap.Total("vidi_encoder_gaps_total"))
	kv("unrecorded ends", snap.Total("vidi_encoder_unrecorded_ends_total"))
	for _, e := range sortedKVList(values(snap, "vidi_store_retries_total")) {
		kv("store retries {"+e.key+"}", e.val)
	}
	for _, e := range sortedKVList(values(snap, "vidi_store_stalls_total")) {
		kv("store stalls {"+e.key+"}", e.val)
	}
	kv("replay gate stalls", snap.Total("vidi_replay_gate_stalls_total"))
	kv("replay fetch stalls", snap.Total("vidi_replay_fetch_stalls_total"))
	kv("shell IRQs", snap.Total("vidi_shell_irqs_total"))
	for _, e := range sortedKVList(values(snap, "vidi_fault_injections_total")) {
		kv("fault injections {"+e.key+"}", e.val)
	}
	if f := snap.Family("vidi_cpu_jitter_cycles"); f != nil {
		var sum float64
		var count uint64
		for _, se := range f.Series {
			sum += se.Sum
			count += se.Count
		}
		if count > 0 {
			fmt.Fprintf(w, "%-32s %10d (mean %.1f cycles)\n", "cpu jitter draws", count, sum/float64(count))
		}
	}
}

type kvEntry struct {
	key string
	val float64
}

// sortedKVList orders a signature-keyed value map for stable display.
func sortedKVList(m map[string]float64) []kvEntry {
	out := make([]kvEntry, 0, len(m))
	for k, v := range m {
		out = append(out, kvEntry{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// sortRows orders rows per the -sort flag: by the first column descending
// with a key-ascending tiebreak (value, the default), or by key ascending
// (name). Equal-valued rows therefore always render in a deterministic
// name order.
func sortRows(rows []row) {
	sort.SliceStable(rows, func(i, j int) bool {
		if sortMode == sortByValue && rows[i].cols[0] != rows[j].cols[0] {
			return rows[i].cols[0] > rows[j].cols[0]
		}
		return rows[i].key < rows[j].key
	})
}

// traceEvent mirrors the Chrome trace_event fields vidi emits.
type traceEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   *float64          `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

type traceDoc struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

// summariseTrace validates a trace_event JSON document the way Perfetto's
// importer would reject it — unknown phases, complete events without
// timestamps or with negative durations — and prints a per-track summary.
func summariseTrace(w io.Writer, path string, topN int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var doc traceDoc
	if err := json.NewDecoder(f).Decode(&doc); err != nil {
		return fmt.Errorf("%s: not trace_event JSON: %w", path, err)
	}
	type trackStat struct {
		name          string
		spans         int
		instants      int
		totalDur      float64
		firstTs, last float64
	}
	procs := map[int]string{}
	threads := map[[2]int]string{}
	stats := map[[2]int]*trackStat{}
	for i, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			switch ev.Name {
			case "process_name":
				procs[ev.Pid] = ev.Args["name"]
			case "thread_name":
				threads[[2]int{ev.Pid, ev.Tid}] = ev.Args["name"]
			default:
				return fmt.Errorf("%s: event %d: unknown metadata record %q", path, i, ev.Name)
			}
		case "X", "i":
			if ev.Ts == nil {
				return fmt.Errorf("%s: event %d (%q): missing ts", path, i, ev.Name)
			}
			if ev.Ph == "X" && ev.Dur <= 0 {
				return fmt.Errorf("%s: event %d (%q): complete event with dur %v", path, i, ev.Name, ev.Dur)
			}
			key := [2]int{ev.Pid, ev.Tid}
			st := stats[key]
			if st == nil {
				st = &trackStat{firstTs: *ev.Ts}
				stats[key] = st
			}
			if *ev.Ts < st.firstTs {
				st.firstTs = *ev.Ts
			}
			if end := *ev.Ts + ev.Dur; end > st.last {
				st.last = end
			}
			if ev.Ph == "X" {
				st.spans++
				st.totalDur += ev.Dur
			} else {
				st.instants++
			}
		default:
			return fmt.Errorf("%s: event %d (%q): unsupported phase %q", path, i, ev.Name, ev.Ph)
		}
	}
	list := make([]*trackStat, 0, len(stats))
	for key, st := range stats {
		proc, thr := procs[key[0]], threads[key]
		if proc == "" || thr == "" {
			return fmt.Errorf("%s: track pid=%d tid=%d has events but no name metadata", path, key[0], key[1])
		}
		st.name = proc + "/" + thr
		list = append(list, st)
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].totalDur != list[j].totalDur {
			return list[i].totalDur > list[j].totalDur
		}
		return list[i].name < list[j].name
	})
	fmt.Fprintf(w, "%s: valid trace_event JSON, %d events across %d tracks\n\n",
		path, len(doc.TraceEvents), len(list))
	fmt.Fprintf(w, "%-32s %8s %9s %12s %12s\n", "track", "spans", "instants", "busy cycles", "span [first,last)")
	for i, st := range list {
		if i >= topN {
			fmt.Fprintf(w, "(%d more)\n", len(list)-topN)
			break
		}
		fmt.Fprintf(w, "%-32s %8d %9d %12.0f [%.0f,%.0f)\n",
			st.name, st.spans, st.instants, st.totalDur, st.firstTs, st.last)
	}
	return nil
}

// watchURL scrapes a live Prometheus /metrics endpoint and renders the
// snapshot tables, once or on an interval. A bare server URL (no path, or
// "/") gets "/metrics" appended so `-url http://host:9412` just works.
func watchURL(w io.Writer, url string, interval time.Duration, topN int) error {
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	if i := strings.Index(url, "://"); !strings.Contains(url[i+3:], "/") || strings.HasSuffix(url, "/") {
		url = strings.TrimSuffix(url, "/") + "/metrics"
	}
	for {
		snap, err := scrape(url)
		if err != nil {
			return err
		}
		if interval > 0 {
			//lint:detaudit header timestamp on a live watch-mode banner; the rendered metrics come from the scraped snapshot, not the clock
			fmt.Fprintf(w, "-- %s @ %s --\n", url, time.Now().Format(time.TimeOnly))
		}
		render(w, snap, topN)
		if interval <= 0 {
			return nil
		}
		time.Sleep(interval)
	}
}

func scrape(url string) (*telemetry.Snapshot, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("%s: HTTP %d: %s", url, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	snap, err := telemetry.ParsePrometheus(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", url, err)
	}
	return snap, nil
}
