// vidi-bench regenerates the tables and figures of the paper's evaluation
// (§5–§6) on the simulation substrate and prints them with the paper's
// numbers alongside.
//
// Usage:
//
//	vidi-bench -table 1            # Table 1: overhead + trace sizes
//	vidi-bench -table 2            # Table 2: resource overhead per app
//	vidi-bench -fig 7              # Fig 7: resource scaling vs width
//	vidi-bench -table effectiveness  # §5.4 divergence experiment
//	vidi-bench -table bandwidth      # §6 back-of-the-envelope analysis
//	vidi-bench -table faults         # fault-injection resilience matrix
//	vidi-bench -all
package main

import (
	"flag"
	"fmt"
	"os"

	"vidi/internal/eval"
)

func main() {
	table := flag.String("table", "", "table to regenerate: 1, 2, sizes, effectiveness, bandwidth, faults")
	fig := flag.String("fig", "", "figure to regenerate: 7")
	all := flag.Bool("all", false, "regenerate everything")
	scale := flag.Int("scale", 1, "workload scale factor")
	reps := flag.Int("reps", 3, "paired R1/R2 runs per app for overhead statistics (paper uses 10)")
	seed := flag.Int64("seed", 1000, "base seed")
	flag.Parse()

	ran := false
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "vidi-bench:", err)
		os.Exit(1)
	}
	if *all || *table == "1" {
		ran = true
		fmt.Println("== Table 1: execution time, recording overhead, trace size ==")
		rows, err := eval.Table1(eval.DefaultTableApps(), *scale, *reps, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Print(eval.FormatTable1(rows))
		fmt.Println()
	}
	if *all || *table == "2" {
		ran = true
		fmt.Println("== Table 2: on-FPGA resource overhead (modelled vs paper) ==")
		fmt.Print(eval.FormatTable2(eval.Table2(eval.DefaultTableApps())))
		fmt.Println()
	}
	if *all || *fig == "7" {
		ran = true
		fmt.Println("== Fig 7: resource overhead vs monitored interface width ==")
		fmt.Print(eval.FormatFig7(eval.Fig7()))
		fmt.Println()
	}
	if *all || *table == "sizes" {
		ran = true
		fmt.Println("== Trace sizes by recording approach ==")
		rows, err := eval.TraceSizes(eval.DefaultTableApps(), *scale, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Print(eval.FormatTraceSizes(rows))
		fmt.Println()
	}
	if *all || *table == "effectiveness" {
		ran = true
		fmt.Println("== §5.4 effectiveness: divergences across record/replay ==")
		names := append(eval.DefaultTableApps(), "dma-irq")
		rows, err := eval.Effectiveness(names, *scale, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Print(eval.FormatEffectiveness(rows))
		fmt.Println()
	}
	if *all || *table == "faults" {
		ran = true
		fmt.Println("== Fault-injection resilience matrix ==")
		rows, err := eval.FaultMatrix(eval.DefaultFaultApps(), *scale, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Print(eval.FormatFaultMatrix(rows))
		fmt.Println()
	}
	if *all || *table == "bandwidth" {
		ran = true
		fmt.Println("== §6: physical-timestamp recording bandwidth analysis ==")
		fmt.Println(eval.Section6())
		fmt.Println()
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
