// vidi-bench regenerates the tables and figures of the paper's evaluation
// (§5–§6) on the simulation substrate and prints them with the paper's
// numbers alongside.
//
// Usage:
//
//	vidi-bench -table 1            # Table 1: overhead + trace sizes
//	vidi-bench -table 2            # Table 2: resource overhead per app
//	vidi-bench -fig 7              # Fig 7: resource scaling vs width
//	vidi-bench -table effectiveness  # §5.4 divergence experiment
//	vidi-bench -table bandwidth      # §6 back-of-the-envelope analysis
//	vidi-bench -table faults         # fault-injection resilience matrix
//	vidi-bench -table kernel         # simulation-kernel throughput (legacy vs scheduler)
//	vidi-bench -table kernel -workers 1,2,4            # worker-pool sweep per app
//	vidi-bench -table kernel -baseline BENCH_kernel.json   # fail on >10% speedup regression
//	vidi-bench -table kernel -json BENCH_kernel.json   # + machine-readable artifact
//	vidi-bench -table kernel -metrics BENCH_metrics.json   # + merged telemetry snapshot
//	vidi-bench -all
//
// -v prints the simulation kernel's scheduler counters (eval calls, settle
// waves, skipped evals, partitions) for every run it performs.
//
// With -table kernel, -metrics writes the merged telemetry snapshot of the
// instrumented runs (each app's series labelled app=<name>; inspect with
// vidi-top -metrics) and -trace-out runs one traced recording per app,
// writing per-app Perfetto timelines with the app name suffixed to the
// path. -pprof profiles the whole invocation.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"vidi/internal/cliutil"
	"vidi/internal/eval"
	"vidi/internal/telemetry"
)

// perAppPath inserts the app name before the path's extension:
// trace.json + sssp → trace-sssp.json.
func perAppPath(path, app string) string {
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + "-" + app + ext
}

func main() {
	table := flag.String("table", "", "table to regenerate: 1, 2, sizes, effectiveness, bandwidth, faults, kernel")
	fig := flag.String("fig", "", "figure to regenerate: 7")
	all := flag.Bool("all", false, "regenerate everything")
	scale := flag.Int("scale", 1, "workload scale factor")
	reps := flag.Int("reps", 3, "paired R1/R2 runs per app for overhead statistics (paper uses 10)")
	seed := flag.Int64("seed", 1000, "base seed")
	verbose := flag.Bool("v", false, "print per-run simulation-kernel scheduler counters")
	jsonOut := flag.String("json", "", "with -table kernel: also write the rows to this JSON file")
	workersCSV := flag.String("workers", "1,2", "with -table kernel: comma-separated scheduler worker-pool sizes to sweep")
	baseline := flag.String("baseline", "", "with -table kernel: committed BENCH_kernel.json to gate against (fail if any app's speedup drops >10% below it)")
	tel := cliutil.AddTelemetryFlags()
	flag.Parse()

	ran := false
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "vidi-bench:", err)
		os.Exit(1)
	}
	if err := tel.Start(); err != nil {
		fail(err)
	}
	if *all || *table == "1" {
		ran = true
		fmt.Println("== Table 1: execution time, recording overhead, trace size ==")
		rows, err := eval.Table1(eval.DefaultTableApps(), *scale, *reps, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Print(eval.FormatTable1(rows))
		fmt.Println()
	}
	if *all || *table == "2" {
		ran = true
		fmt.Println("== Table 2: on-FPGA resource overhead (modelled vs paper) ==")
		fmt.Print(eval.FormatTable2(eval.Table2(eval.DefaultTableApps())))
		fmt.Println()
	}
	if *all || *fig == "7" {
		ran = true
		fmt.Println("== Fig 7: resource overhead vs monitored interface width ==")
		fmt.Print(eval.FormatFig7(eval.Fig7()))
		fmt.Println()
	}
	if *all || *table == "sizes" {
		ran = true
		fmt.Println("== Trace sizes by recording approach ==")
		rows, err := eval.TraceSizes(eval.DefaultTableApps(), *scale, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Print(eval.FormatTraceSizes(rows))
		fmt.Println()
	}
	if *all || *table == "effectiveness" {
		ran = true
		fmt.Println("== §5.4 effectiveness: divergences across record/replay ==")
		names := append(eval.DefaultTableApps(), "dma-irq")
		rows, err := eval.Effectiveness(names, *scale, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Print(eval.FormatEffectiveness(rows))
		fmt.Println()
	}
	if *all || *table == "faults" {
		ran = true
		fmt.Println("== Fault-injection resilience matrix ==")
		rows, err := eval.FaultMatrix(eval.DefaultFaultApps(), *scale, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Print(eval.FormatFaultMatrix(rows))
		fmt.Println()
	}
	if *all || *table == "kernel" {
		ran = true
		fmt.Println("== Simulation-kernel throughput: legacy fixpoint vs sensitivity scheduler ==")
		var workers []int
		for _, f := range strings.Split(*workersCSV, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			w, err := strconv.Atoi(f)
			if err != nil || w < 1 {
				fail(fmt.Errorf("-workers: %q is not a positive worker count", f))
			}
			workers = append(workers, w)
		}
		// The baseline loads before the run so -json may safely overwrite the
		// committed artifact with the fresh rows afterwards.
		var base map[string]eval.KernelBenchRow
		if *baseline != "" {
			var err error
			if base, err = eval.LoadKernelBenchJSON(*baseline); err != nil {
				fail(err)
			}
		}
		apps := append(eval.DefaultTableApps(), "dma-irq", "stress")
		rows, stats, snap, err := eval.KernelBench(apps, *scale, *reps, *seed, workers)
		if err != nil {
			fail(err)
		}
		fmt.Print(eval.FormatKernelBench(rows))
		fmt.Printf("geomean speedup: %.2fx\n", eval.GeomeanSpeedup(rows))
		if base != nil {
			if err := eval.CheckKernelBaseline(base, rows, 10); err != nil {
				fail(err)
			}
			fmt.Printf("baseline gate: ok (no app >10%% below %s)\n", *baseline)
		}
		if *verbose {
			for _, r := range rows {
				st := stats[r.App]
				fmt.Printf("  %-9s legacy    %v\n", r.App, st.Legacy)
				fmt.Printf("  %-9s scheduler %v\n", r.App, st.Sched)
			}
		}
		if *jsonOut != "" {
			if err := eval.WriteKernelBenchJSON(*jsonOut, *scale, *reps, *seed, rows); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s\n", *jsonOut)
		}
		if tel.MetricsPath != "" {
			if err := cliutil.WriteMetricsFile(tel.MetricsPath, snap); err != nil {
				fail(err)
			}
			fmt.Printf("merged metrics written to %s (inspect with vidi-top -metrics)\n", tel.MetricsPath)
		}
		if tel.TracePath != "" {
			// The timed runs above stay untraced (span recording would taint
			// the sink-overhead column); tracing gets one dedicated recording
			// per app instead.
			for _, app := range apps {
				sink := telemetry.New(telemetry.WithTracing())
				if _, err := eval.Run(eval.RunConfig{App: app, Scale: *scale, Seed: *seed, Cfg: eval.R2, Telemetry: sink}); err != nil {
					fail(err)
				}
				path := perAppPath(tel.TracePath, app)
				if err := cliutil.WriteTraceFile(path, sink); err != nil {
					fail(err)
				}
				fmt.Printf("timeline written to %s (open in ui.perfetto.dev)\n", path)
			}
		}
		fmt.Println()
	}
	if *all || *table == "bandwidth" {
		ran = true
		fmt.Println("== §6: physical-timestamp recording bandwidth analysis ==")
		fmt.Println(eval.Section6())
		fmt.Println()
	}
	if !ran && *verbose {
		// Bare -v: one recording per app, printing the scheduler counters.
		ran = true
		fmt.Println("== Simulation-kernel scheduler counters (one R2 recording per app) ==")
		for _, app := range append(eval.DefaultTableApps(), "dma-irq", "stress") {
			res, err := eval.Run(eval.RunConfig{App: app, Scale: *scale, Seed: *seed, Cfg: eval.R2})
			if err != nil {
				fail(err)
			}
			fmt.Printf("%-9s %v\n", app, res.Stats)
		}
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	if err := tel.StopPprof(os.Stdout); err != nil {
		fail(err)
	}
}
