// vidi-replay re-executes a recorded trace against a bundled application
// (configuration R3: the replay is itself recorded, producing the
// validation trace for divergence detection).
//
// Usage:
//
//	vidi-replay -app sha -trace sha.vidt -seed 42 -validate
//
// Use the same -seed and -scale as the recording (the equivalent of
// redeploying the same bitstream). With -validate, the validation trace is
// compared against the reference and the divergence report printed.
//
// -metrics and -trace-out arm the unified telemetry sink over the replay
// (replayer gate stalls, decoder fetch stalls, per-channel injection rates);
// inspect the outputs with vidi-top or load the timeline in ui.perfetto.dev.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vidi/internal/apps"
	"vidi/internal/cliutil"
	"vidi/internal/core"
	"vidi/internal/eval"
	"vidi/internal/trace"
)

func main() {
	app := flag.String("app", "", "application to replay: "+strings.Join(apps.Names(), ", "))
	tracePath := flag.String("trace", "", "reference trace file")
	seed := flag.Int64("seed", 1, "seed used at record time")
	scale := flag.Int("scale", 1, "workload scale used at record time")
	validate := flag.Bool("validate", false, "compare the validation trace against the reference")
	valOut := flag.String("validation-out", "", "optionally save the validation trace")
	vcd := flag.String("vcd", "", "dump the replayed FPGA-side signals to a VCD waveform file")
	ifaces := flag.String("interfaces", "", "interface selection used at record time, e.g. ocl,pcis,irq")
	tel := cliutil.AddTelemetryFlags()
	flag.Parse()

	if *app == "" || *tracePath == "" {
		flag.Usage()
		os.Exit(2)
	}
	ref, err := trace.LoadAuto(*tracePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vidi-replay:", err)
		os.Exit(1)
	}
	sink := tel.Sink()
	rc := eval.RunConfig{
		App: *app, Scale: *scale, Seed: *seed, Cfg: eval.R3, ReplayTrace: ref, VCDPath: *vcd,
		Telemetry: sink,
	}
	if *ifaces != "" {
		rc.OnlyInterfaces = strings.Split(*ifaces, ",")
	}
	if err := tel.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "vidi-replay:", err)
		os.Exit(1)
	}
	res, err := eval.Run(rc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vidi-replay:", err)
		os.Exit(1)
	}
	fmt.Printf("replayed %s: %d cycles, %d transactions recreated\n",
		*app, res.Cycles, res.Trace.TotalTransactions())
	if err := tel.Finish(sink, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vidi-replay:", err)
		os.Exit(1)
	}
	if *vcd != "" {
		fmt.Println("waveforms dumped to", *vcd)
	}
	if *valOut != "" {
		if err := res.Trace.Save(*valOut); err != nil {
			fmt.Fprintln(os.Stderr, "vidi-replay:", err)
			os.Exit(1)
		}
		fmt.Println("validation trace saved to", *valOut)
	}
	if *validate {
		report, err := core.Compare(ref, res.Trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vidi-replay:", err)
			os.Exit(1)
		}
		fmt.Print(report)
		fmt.Println()
		if !report.Clean() {
			fmt.Println("diagnosis:")
			fmt.Print(core.FormatFindings(core.Diagnose(report, ref)))
			os.Exit(3)
		}
	}
}
