// vidi-serve is the multi-tenant record/replay service: tenants open
// recording sessions over HTTP, stream CRC/sequenced storage frames into a
// crash-safe content-addressed trace store, and queue replay/compare/
// diagnose jobs executed by a bounded worker pool. Every start replays the
// store journal and quarantines torn or damaged artifacts before serving.
//
// Usage:
//
//	vidi-serve -root artifacts -addr :9412     # serve
//	vidi-serve -chaos                          # run the service fault matrix and exit
//
// Observability: GET /metrics serves Prometheus text (vidi-top -url
// renders it), GET /healthz the breaker and session state, GET
// /v1/recovery the startup recovery report, GET /v1/slow the
// slowest-request exemplars with per-stage timings. -log text|json emits
// one structured line per completed request and job, each carrying the
// X-Vidi-Request-Id that ties client and server records together.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"time"

	"vidi/internal/serve"
	"vidi/internal/telemetry"
)

func main() {
	root := flag.String("root", "artifacts", "trace store root directory")
	addr := flag.String("addr", ":9412", "listen address")
	chaos := flag.Bool("chaos", false, "run the chaos fault matrix against a live in-process server, report, and exit")
	scale := flag.Int("scale", 1, "workload scale for -chaos")
	seed := flag.Int64("seed", 42, "seed for -chaos and store retry jitter")
	tenantSessions := flag.Int("tenant-sessions", 0, "max open sessions per tenant (0 = default)")
	maxSessions := flag.Int("max-sessions", 0, "max open sessions server-wide (0 = default)")
	workers := flag.Int("workers", 0, "replay job workers (0 = default)")
	reqTimeout := flag.Duration("request-timeout", 0, "per-request deadline (0 = default)")
	logMode := flag.String("log", "off", "structured request logging: off|text|json")
	slowRequests := flag.Int("slow-requests", 0, "slow-request exemplar ring size for /v1/slow (0 = default)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "vidi-serve:", err)
		os.Exit(1)
	}

	var logger *slog.Logger
	switch *logMode {
	case "off":
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	default:
		fail(fmt.Errorf("-log %q: want off, text, or json", *logMode))
	}

	if *chaos {
		dir, err := os.MkdirTemp("", "vidi-serve-chaos-")
		if err != nil {
			fail(err)
		}
		defer os.RemoveAll(dir)
		report, err := serve.RunChaosMatrix(serve.ChaosOptions{
			Root:  dir,
			Scale: *scale,
			Seed:  *seed,
			Log: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		})
		if err != nil {
			fail(err)
		}
		fmt.Print(report.String())
		if fails := report.Failures(); len(fails) > 0 {
			for _, f := range fails {
				fmt.Fprintln(os.Stderr, "FAIL:", f)
			}
			os.Exit(1)
		}
		fmt.Println("chaos matrix passed: zero corrupted manifests, zero silent divergences")
		return
	}

	st, rec, err := serve.OpenStore(*root, serve.StoreOptions{JitterSeed: *seed})
	if err != nil {
		fail(err)
	}
	fmt.Println(rec.String())

	sink := telemetry.New(telemetry.WithTracing(), telemetry.WithConstLabels(telemetry.L("service", "vidi-serve")))
	srv := serve.NewServer(st, serve.ServerOptions{
		Limits: serve.Limits{
			MaxSessionsPerTenant: *tenantSessions,
			MaxOpenSessions:      *maxSessions,
			Workers:              *workers,
			RequestTimeout:       *reqTimeout,
		},
		Sink:         sink,
		Recovery:     rec,
		Logger:       logger,
		SlowRequests: *slowRequests,
	})
	defer srv.Close()

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("vidi-serve: listening on %s, store root %s\n", *addr, *root)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fail(err)
	}
}
