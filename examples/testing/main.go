// Testing case study (§5.3 of the Vidi paper): capture a production trace
// of a ping-pong echo server whose write-back path runs through the buggy
// axi_atop_filter, mutate the trace so the first write-data end event
// happens before the write-address end event — an interleaving AXI permits
// but that never occurred naturally — and replay:
//
//   - the buggy filter deadlocks (it assumed AW always completes first);
//   - the upstream bugfix survives the same mutated trace.
//
// Run:
//
//	go run ./examples/testing
package main

import (
	"errors"
	"fmt"
	"log"

	"vidi/internal/bugs"
	"vidi/internal/core"
	"vidi/internal/shell"
	"vidi/internal/sim"
	"vidi/internal/trace"
)

func run(app *bugs.PingPongApp, opts core.Options, seed int64, replay *trace.Trace, maxCycles uint64) (*core.Shim, error) {
	sys := shell.NewSystem(shell.Config{Replay: opts.Mode == core.ModeReplay, Seed: seed, JitterMax: 4})
	sys.Sim.WatchdogWindow = 3000
	app.Build(sys)
	opts.ReplayTrace = replay
	sh, err := core.NewShim(sys.Sim, sys.Boundary, opts)
	if err != nil {
		log.Fatal(err)
	}
	var done func() bool
	if opts.Mode == core.ModeReplay {
		done = func() bool { return sh.ReplayDone() && app.Done() }
	} else {
		app.Program(sys.CPU)
		done = func() bool { return sys.CPU.Done() && app.Done() }
	}
	_, err = sys.Sim.Run(maxCycles, done)
	return sh, err
}

func copyTrace(tr *trace.Trace) *trace.Trace {
	c, err := trace.FromBytes(tr.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	return c
}

func main() {
	fmt.Println("step 1: deploy the echo server (buggy axi_atop_filter on the pong path)")
	fmt.Println("        and capture a production trace")
	recApp := &bugs.PingPongApp{BuggyFilter: true, Pings: 6}
	sh, err := run(recApp, core.Options{Mode: core.ModeRecord, ValidateOutputs: true}, 8, nil, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	ref := sh.Trace()
	fmt.Printf("        captured %d transactions; no deadlock in production\n", ref.TotalTransactions())

	fmt.Println("\nstep 2: replay the unmutated trace — the dangerous interleaving")
	fmt.Println("        never occurs naturally, so the bug stays hidden")
	if _, err := run(&bugs.PingPongApp{BuggyFilter: true, Pings: 6},
		core.Options{Mode: core.ModeReplay}, 8, copyTrace(ref), 1_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Println("        replay completed: bug not exposed")

	fmt.Println("\nstep 3: mutate the trace — move pcim.W end #0 before pcim.AW end #0")
	fmt.Println("        (a CPU-side DMA controller may legally complete data first)")
	mutated := copyTrace(ref)
	if err := core.MoveEndBefore(mutated, "pcim.W", 0, "pcim.AW", 0); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nstep 4: replay the mutated trace against the buggy filter")
	_, err = run(&bugs.PingPongApp{BuggyFilter: true, Pings: 6},
		core.Options{Mode: core.ModeReplay}, 8, copyTrace(mutated), 300_000)
	if errors.Is(err, sim.ErrDeadlock) {
		fmt.Println("        DEADLOCK detected: the filter never offers W until AW completes,")
		fmt.Println("        while the environment completes AW only after W — the bug is exposed")
	} else {
		log.Fatalf("expected deadlock, got %v", err)
	}

	fmt.Println("\nstep 5: replay the same mutated trace against the fixed filter")
	if _, err := run(&bugs.PingPongApp{BuggyFilter: false, Pings: 6},
		core.Options{Mode: core.ModeReplay}, 8, copyTrace(mutated), 1_000_000); err != nil {
		log.Fatalf("fixed filter should survive: %v", err)
	}
	fmt.Println("        replay completed: the bugfix eliminates the deadlock")
}
