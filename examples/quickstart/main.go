// Quickstart: record and replay a custom FPGA design with Vidi.
//
// This example builds a tiny order-dependent accelerator — a running
// checksum with an "add" and a "mix" input channel and one result channel —
// drives it with a jittery environment (the non-determinism a real CPU and
// PCIe fabric inject), records the execution through a Vidi shim, and then
// replays the trace into a fresh instance of the design. Transaction
// determinism makes the replayed outputs identical even though the replay
// has none of the original timing.
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"vidi"
)

// checksum is the FPGA design under test. Its output depends on the
// interleaving of the two input channels, so order-less record/replay could
// not reproduce it.
type checksum struct {
	add, mix, out *vidi.Channel
	acc           uint32
	pending       [][]byte
	active        bool
	cur           []byte
	Outputs       []uint32
}

func (c *checksum) Name() string { return "checksum" }

func (c *checksum) Eval() {
	c.add.Ready.Set(len(c.pending) < 4)
	c.mix.Ready.Set(len(c.pending) < 4)
	c.out.Valid.Set(c.active)
	if c.active {
		c.out.Data.Set(c.cur)
	}
}

func (c *checksum) Tick() {
	if c.add.Fired() {
		c.acc += binary.LittleEndian.Uint32(c.add.Data.Get())
		c.emit()
	}
	if c.mix.Fired() {
		c.acc = c.acc<<5 | c.acc>>27 // rotate
		c.acc ^= binary.LittleEndian.Uint32(c.mix.Data.Get())
		c.emit()
	}
	if c.active && c.out.Fired() {
		c.Outputs = append(c.Outputs, binary.LittleEndian.Uint32(c.cur))
		c.active = false
	}
	if !c.active && len(c.pending) > 0 {
		c.cur = c.pending[0]
		c.pending = c.pending[1:]
		c.active = true
	}
}

func (c *checksum) emit() {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, c.acc)
	c.pending = append(c.pending, b)
}

// world wires one checksum instance behind a Vidi boundary.
type world struct {
	sim      *vidi.Simulator
	boundary *vidi.Boundary
	design   *checksum
	envAdd   *vidi.Channel
	envMix   *vidi.Channel
	envOut   *vidi.Channel
}

func build() *world {
	s := vidi.NewSimulator()
	w := &world{sim: s, boundary: vidi.NewBoundary()}
	w.envAdd = s.NewChannel("env.add", 4)
	w.envMix = s.NewChannel("env.mix", 4)
	w.envOut = s.NewChannel("env.out", 4)
	appAdd := s.NewChannel("app.add", 4)
	appMix := s.NewChannel("app.mix", 4)
	appOut := s.NewChannel("app.out", 4)

	// Declare the record/replay boundary: two input channels, one output.
	w.boundary.MustAdd(vidi.ChannelInfo{Name: "add", Interface: "in", Width: 4, Dir: vidi.Input}, w.envAdd, appAdd)
	w.boundary.MustAdd(vidi.ChannelInfo{Name: "mix", Interface: "in", Width: 4, Dir: vidi.Input}, w.envMix, appMix)
	w.boundary.MustAdd(vidi.ChannelInfo{Name: "out", Interface: "out", Width: 4, Dir: vidi.Output}, w.envOut, appOut)

	w.design = &checksum{add: appAdd, mix: appMix, out: appOut}
	s.Register(w.design)
	return w
}

func u32(v uint32) []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, v)
	return b
}

func main() {
	const ops = 24

	// ---- Record: jittery environment + Vidi shim in record mode. ----
	w := build()
	shim, err := vidi.NewShim(w.sim, w.boundary, vidi.ShimOptions{
		Mode: vidi.ModeRecord, ValidateOutputs: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	rng := vidi.NewRand(2024)
	addS := vidi.NewSender("addS", w.envAdd)
	mixS := vidi.NewSender("mixS", w.envMix)
	outR := vidi.NewReceiver("outR", w.envOut)
	addS.Gap = vidi.GapPolicy(rng, 0, 7) // CPU-side timing noise
	mixS.Gap = vidi.GapPolicy(rng, 0, 7)
	outR.Policy = vidi.JitterPolicy(rng, 40)
	w.sim.Register(addS, mixS, outR)
	for i := 0; i < ops; i++ {
		addS.Push(u32(uint32(i*11 + 3)))
		mixS.Push(u32(uint32(i*7 + 5)))
	}
	if _, err := w.sim.Run(100000, func() bool { return len(outR.Received) == 2*ops }); err != nil {
		log.Fatal(err)
	}
	recorded := w.design.Outputs
	tr := shim.Trace()
	fmt.Printf("recorded %d transactions in %d cycles (%d trace bytes)\n",
		tr.TotalTransactions(), w.sim.Cycle(), tr.SizeBytes())

	// ---- Replay: fresh design instance, no environment, no jitter. ----
	w2 := build()
	shim2, err := vidi.NewShim(w2.sim, w2.boundary, vidi.ShimOptions{
		Mode: vidi.ModeReplay, Record: true, ValidateOutputs: true, ReplayTrace: tr,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := w2.sim.Run(100000, shim2.ReplayDone); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed in %d cycles\n", w2.sim.Cycle())

	// ---- Compare outputs and run divergence detection. ----
	same := len(recorded) == len(w2.design.Outputs)
	for i := range recorded {
		if !same || recorded[i] != w2.design.Outputs[i] {
			same = false
			break
		}
	}
	fmt.Printf("outputs identical across record and replay: %v\n", same)
	report, err := vidi.Validate(tr, shim2.Trace())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("divergence report:", report)
	if !same || !report.Clean() {
		log.Fatal("quickstart: replay did not reproduce the execution")
	}
}
