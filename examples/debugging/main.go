// Debugging case study (§5.2 of the Vidi paper): use record/replay to
// reliably reproduce two hardware-only bugs in an echo server built on a
// buggy Frame FIFO, then point LossCheck at the root cause.
//
//  1. Delayed start: when the control thread (T2) starts the FIFO drain
//     after the data thread (T1) has begun DMA, the buggy FIFO silently
//     drops fragments. Vidi records one failing execution, replays it
//     deterministically, and LossCheck identifies the dropped fragments.
//  2. Unaligned DMA: the echo server ignores the DMA byte-enable mask, so
//     masked-out garbage bytes corrupt the data. The mask travels in the
//     recorded transaction contents, so replay reproduces the corruption
//     that simulation-only testing never sees.
//
// Run:
//
//	go run ./examples/debugging
package main

import (
	"bytes"
	"fmt"
	"log"

	"vidi/internal/bugs"
	"vidi/internal/core"
	"vidi/internal/shell"
	"vidi/internal/trace"
)

func run(app *bugs.EchoApp, opts core.Options, seed int64, replay *trace.Trace) (*shell.System, *core.Shim) {
	sys := shell.NewSystem(shell.Config{Replay: opts.Mode == core.ModeReplay, Seed: seed, JitterMax: 4})
	app.Build(sys)
	opts.ReplayTrace = replay
	sh, err := core.NewShim(sys.Sim, sys.Boundary, opts)
	if err != nil {
		log.Fatal(err)
	}
	var done func() bool
	if opts.Mode == core.ModeReplay {
		done = func() bool { return sh.ReplayDone() && app.Done() }
	} else {
		app.Program(sys.CPU)
		done = func() bool { return sys.CPU.Done() && app.Done() }
	}
	if _, err := sys.Sim.Run(3_000_000, done); err != nil {
		log.Fatal(err)
	}
	return sys, sh
}

func main() {
	fmt.Println("== Bug 1: delayed start drops data ==")
	recApp := &bugs.EchoApp{Frames: 12, DelayStart: 400}
	_, sh := run(recApp, core.Options{Mode: core.ModeRecord, ValidateOutputs: true}, 5, nil)
	lost := len(recApp.Sent) - countMatching(recApp.Sent, recApp.Received)
	fmt.Printf("T1 observed data inconsistency: %d of %d bytes differ\n", lost, len(recApp.Sent))
	fmt.Printf("trace captured: %d transactions\n", sh.Trace().TotalTransactions())

	fmt.Println("\nreplaying the buggy execution (as many times as needed)...")
	repApp := &bugs.EchoApp{Frames: 12, DelayStart: 400}
	_, sh2 := run(repApp, core.Options{Mode: core.ModeReplay, Record: true, ValidateOutputs: true}, 5, sh.Trace())
	report, err := core.Compare(sh.Trace(), sh2.Trace())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("replay fidelity:", report)

	fmt.Println("\nLossCheck (third-party diagnosis tool) on the replayed instance:")
	loss := repApp.Loss()
	fmt.Printf("  %d fragments dropped by the Frame FIFO; first indices: %v\n", len(loss), head(loss, 8))
	fmt.Println("  root cause: FIFO drops frame tails when the frame size is unaligned")
	fmt.Println("  with the remaining capacity, instead of blocking the producer.")

	fixed := &bugs.EchoApp{Frames: 12, DelayStart: 400, FixedFIFO: true}
	run(fixed, core.Options{Mode: core.ModeOff}, 5, nil)
	fmt.Printf("\nwith the fixed FIFO: data intact = %v, drops = %d\n",
		bytes.Equal(fixed.Received, fixed.Sent), len(fixed.Loss()))

	fmt.Println("\n== Bug 2: unaligned DMA byte-enable masks ==")
	unApp := &bugs.EchoApp{Frames: 8, UnalignedGarbage: 12}
	_, sh3 := run(unApp, core.Options{Mode: core.ModeRecord, ValidateOutputs: true}, 6, nil)
	fmt.Printf("read-back of the masked beat: % x ... (0xEE = garbage under a cleared mask)\n",
		unApp.Received[:16])

	unRep := &bugs.EchoApp{Frames: 8, UnalignedGarbage: 12}
	_, sh4 := run(unRep, core.Options{Mode: core.ModeReplay, Record: true, ValidateOutputs: true}, 6, sh3.Trace())
	report, err = core.Compare(sh3.Trace(), sh4.Trace())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("replay reproduces the mask-dependent corruption:", report)
}

func countMatching(a, b []byte) int {
	n := 0
	for i := range a {
		if i < len(b) && a[i] == b[i] {
			n++
		}
	}
	return n
}

func head(xs []int, n int) []int {
	if len(xs) < n {
		return xs
	}
	return xs[:n]
}
