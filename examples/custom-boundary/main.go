// Custom boundary (§4.1 of the Vidi paper): the prototype records the five
// CPU-facing AXI interfaces by default, but a developer can point Vidi at
// any AXI-like interface — the paper extends it to the DDR4 interface and
// application-internal buses with ~13 lines per interface.
//
// This example declares a record/replay boundary over an *internal* DDR
// interface: the program side is a scatter/gather engine issuing write and
// read bursts; the environment side is the DDR controller with jittered
// response latencies. Recording captures the B/R responses; replay
// recreates the DDR controller's behaviour without the controller.
//
// Run:
//
//	go run ./examples/custom-boundary
package main

import (
	"bytes"
	"fmt"
	"log"

	"vidi"
	"vidi/internal/axi"
)

// world is one instance of the design: engines (program) on the app side of
// the boundary, optionally a DDR controller (environment) on the env side.
type world struct {
	sim      *vidi.Simulator
	boundary *vidi.Boundary
	wr       *axi.WriteManager
	rd       *axi.ReadManager
	readBack [][]byte
}

func build(withController bool, seed int64) *world {
	s := vidi.NewSimulator()
	w := &world{sim: s, boundary: vidi.NewBoundary()}

	env := axi.NewFull(s, "ddr.env")
	app := axi.NewFull(s, "ddr.app")

	// The ~13 lines that declare the custom boundary: one Add per channel.
	// The program (scatter/gather engine) is the AXI manager, so AW/W/AR
	// are outputs of the program and B/R are its inputs.
	add := func(name string, e, a *vidi.Channel, dir, _ int) {
		d := vidi.Output
		if dir == 1 {
			d = vidi.Input
		}
		w.boundary.MustAdd(vidi.ChannelInfo{Name: "ddr." + name, Interface: "ddr", Width: e.Width(), Dir: d}, e, a)
	}
	add("AW", env.AW, app.AW, 0, 0)
	add("W", env.W, app.W, 0, 0)
	add("B", env.B, app.B, 1, 0)
	add("AR", env.AR, app.AR, 0, 0)
	add("R", env.R, app.R, 1, 0)

	w.wr = axi.NewWriteManager("sg-writer", app)
	w.rd = axi.NewReadManager("sg-reader", app)
	s.Register(w.wr, w.rd)

	if withController {
		mem := make(axi.SliceMem, 1<<16)
		sub := axi.NewMemSubordinate("ddr-ctrl", env, mem)
		rng := vidi.NewRand(seed ^ 0xdd4)
		sub.RespDelay = func() int { return 2 + rng.Intn(6) } // DRAM bank jitter
		s.Register(sub)
	}
	return w
}

// program pushes the engine's work: scattered writes then read-back.
func program(w *world, seed int64) {
	rng := vidi.NewRand(seed)
	for i := 0; i < 8; i++ {
		data := make([]byte, 128)
		rng.Read(data)
		addr := uint64(i * 512)
		w.wr.Push(axi.WriteOp{Addr: addr, Data: data})
	}
	for i := 0; i < 8; i++ {
		w.rd.Push(axi.ReadOp{Addr: uint64(i * 512), Beats: 2, Done: func(d []byte, _ uint8) {
			w.readBack = append(w.readBack, d)
		}})
	}
}

func main() {
	const seed = 77

	// ---- Record: program + DDR controller, shim over the DDR boundary. ----
	rec := build(true, seed)
	shim, err := vidi.NewShim(rec.sim, rec.boundary, vidi.ShimOptions{
		Mode: vidi.ModeRecord, ValidateOutputs: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	program(rec, seed)
	done := func() bool { return rec.wr.Idle() && rec.rd.Idle() }
	if _, err := rec.sim.Run(100000, done); err != nil {
		log.Fatal(err)
	}
	tr := shim.Trace()
	fmt.Printf("recorded %d DDR transactions (%d trace bytes) in %d cycles\n",
		tr.TotalTransactions(), tr.SizeBytes(), rec.sim.Cycle())

	// ---- Replay: same program, NO DDR controller. The replayers stand in
	// for it, recreating the recorded responses and orderings. ----
	rep := build(false, seed)
	shim2, err := vidi.NewShim(rep.sim, rep.boundary, vidi.ShimOptions{
		Mode: vidi.ModeReplay, Record: true, ValidateOutputs: true, ReplayTrace: tr,
	})
	if err != nil {
		log.Fatal(err)
	}
	program(rep, seed)
	if _, err := rep.sim.Run(100000, func() bool {
		return shim2.ReplayDone() && rep.wr.Idle() && rep.rd.Idle()
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed in %d cycles without the DDR controller\n", rep.sim.Cycle())

	same := len(rec.readBack) == len(rep.readBack)
	for i := range rec.readBack {
		if !same || !bytes.Equal(rec.readBack[i], rep.readBack[i]) {
			same = false
			break
		}
	}
	fmt.Println("read-back data identical across record and replay:", same)

	report, err := vidi.Validate(tr, shim2.Trace())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("divergence report:", report)
	if !same || !report.Clean() {
		log.Fatal("custom-boundary: replay did not reproduce the DDR traffic")
	}
}
