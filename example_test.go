package vidi_test

import (
	"fmt"

	"vidi"
)

// ExampleRecord records one execution of the bundled SHA-256 accelerator
// and reports what was captured.
func ExampleRecord() {
	rec, err := vidi.Record("sha", vidi.WithSeed(42))
	if err != nil {
		panic(err)
	}
	fmt.Println("golden check passed:", rec.GoldenErr == nil)
	fmt.Println("transactions recorded:", rec.Trace.TotalTransactions())
	// Output:
	// golden check passed: true
	// transactions recorded: 820
}

// ExampleValidate runs the paper's §5.4 effectiveness workflow: record,
// replay, compare.
func ExampleValidate() {
	rec, err := vidi.Record("bnn", vidi.WithSeed(7))
	if err != nil {
		panic(err)
	}
	rep, err := vidi.Replay("bnn", rec.Trace, vidi.WithSeed(7))
	if err != nil {
		panic(err)
	}
	report, err := vidi.Validate(rec.Trace, rep.Trace)
	if err != nil {
		panic(err)
	}
	fmt.Println(report)
	// Output:
	// no divergences in 243 transactions
}

// ExampleMoveEndBefore demonstrates the trace mutation behind the §5.3
// testing case study.
func ExampleMoveEndBefore() {
	rec, err := vidi.Record("dma-irq", vidi.WithSeed(2))
	if err != nil {
		panic(err)
	}
	before := rec.Trace.TotalTransactions()
	if err := vidi.MoveEndBefore(rec.Trace, "ocl.B", 3, "ocl.B", 1); err != nil {
		panic(err)
	}
	fmt.Println("transactions preserved:", rec.Trace.TotalTransactions() == before)
	// Output:
	// transactions preserved: true
}
